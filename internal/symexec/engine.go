package symexec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dise/internal/cfg"
	"dise/internal/constraint"
	"dise/internal/lang/ast"
	"dise/internal/lang/token"
	"dise/internal/lang/types"
	"dise/internal/memo"
	"dise/internal/solver"
	"dise/internal/sym"
)

// Config tunes an Engine.
type Config struct {
	// DepthBound limits the number of CFG nodes executed on a single path;
	// paths that exceed it are abandoned (counted in Stats.DepthBoundHits),
	// guaranteeing termination for loops (paper §2.1). Zero means the
	// default of 1000.
	DepthBound int
	// MaxStates aborts the whole run after this many states, as a safety
	// valve for runaway exploration. Zero means no limit.
	MaxStates int
	// IntDomain is the solver domain for integer symbolic inputs. The zero
	// value selects solver.DefaultDomain (non-negative, Choco-like).
	IntDomain solver.Interval
	// ConcreteGlobals makes global variables take their declared constant
	// initializers instead of fresh symbolic values. By default globals are
	// symbolic inputs, matching the paper's SPF setup where fields are
	// symbolic (§5.2).
	ConcreteGlobals bool
	// SolverOptions configures the constraint solver.
	SolverOptions solver.Options
	// SolverBackend selects the constraint backend by registry name
	// (internal/constraint). Empty selects the default incremental interval
	// backend.
	SolverBackend string
	// SolverSMT configures the external solver session of the "smtlib"
	// backend (binary path, per-check deadline, restart budget, circuit
	// breaker); ignored by backends that never leave the process.
	SolverSMT constraint.SMTOptions
	// SolverPortfolio selects the member backends of the "portfolio"
	// meta-backend by registry name; empty selects its default member set.
	SolverPortfolio []string
	// SolverCache, when non-nil, is a shared prefix-result cache: engines
	// given the same cache (e.g. the worker pool of a batch analysis over
	// variants of one base program) reuse each other's solved path-condition
	// prefixes.
	SolverCache *constraint.PrefixCache
	// Interrupt, when non-nil, is polled once per executed CFG node. A
	// non-nil return aborts the exploration within one step: Step produces no
	// successors, search loops unwind without collecting partial paths, and
	// the error is available from InterruptErr. This is how context
	// cancellation reaches the innermost search loop.
	Interrupt func() error
	// Memo, when non-nil, is the session-persistent execution-tree trie of a
	// version-chain session (internal/memo): Step consults it before calling
	// the constraint backend — a branch whose recorded verdict matches is
	// decided with no Backend.Check call at all (counted in Stats.MemoHits) —
	// and records the verdicts of live solves into it for the next version.
	// The trie must already be keyed in this engine's version space (the
	// session's Rekey pass); engines sharing a run (forks) share the trie.
	Memo *memo.Tree
	// Strategy selects the exploration order of the scheduler by name
	// ("dfs", "bfs", "directed"; see frontier.go). Empty selects DFS, the
	// classic depth-first order. Unknown names fail engine construction.
	Strategy string
	// ExploreParallelism is the number of workers draining one exploration's
	// frontier (intra-query parallelism). Each worker owns an engine fork
	// with a private solver assertion stack; all forks share one prefix
	// cache. Zero or one means sequential exploration; negative values and
	// values above MaxExploreParallelism fail engine construction (each
	// worker is a live solver context, so the count must stay sane).
	ExploreParallelism int
	// MergeBound enables bounded state merging (merge.go): at CFG join
	// points, sibling states whose environments differ only in value
	// bindings are fused into one state whose environment maps each
	// differing name to a canonical sym.ITE over the siblings' path-suffix
	// guards, and whose path condition factors the suffixes through a
	// disjunction. Zero disables merging (the default); MergeUnbounded (-1)
	// merges every mergeable sibling group whole; values >= 2 cap how many
	// siblings fuse into one state per merge. 1 and values below
	// MergeUnbounded fail engine construction, as does combining merging
	// with a memo trie (Config.Memo): recorded verdicts are keyed by
	// per-path conjunctions, which merging replaces with factored
	// disjunctions, so sessions reject the mode until merge-aware rekeying
	// exists.
	MergeBound int
	// MergeBudget caps the number of merge operations performed in one
	// exploration when merging is enabled; once spent, remaining states
	// pass through joins unmerged. Zero means no cap.
	MergeBudget int
}

// MergeUnbounded as Config.MergeBound merges every mergeable sibling group
// at a join whole, however many states arrive.
const MergeUnbounded = -1

// MaxExploreParallelism bounds Config.ExploreParallelism: workers beyond any
// plausible core count only add coordination overhead and solver-context
// memory.
const MaxExploreParallelism = 256

// ResolvedStrategy returns the strategy name the scheduler will actually
// use: the configured one, or the DFS default for the empty string.
func (c Config) ResolvedStrategy() string {
	if c.Strategy == "" {
		return StrategyDFS
	}
	return c.Strategy
}

// ResolvedExploreParallelism returns the worker count the scheduler will
// actually run: the configured one, with 0 (and 1) meaning sequential.
func (c Config) ResolvedExploreParallelism() int {
	if c.ExploreParallelism < 1 {
		return 1
	}
	return c.ExploreParallelism
}

// Stats are the cost counters reported in the paper's Table 2: states
// explored, time, and the number of path conditions (len(Summary.Paths)).
type Stats struct {
	StatesExplored     int
	PathsExplored      int
	InfeasibleBranches int
	DepthBoundHits     int
	// ModelHits counts branch feasibility decisions answered by the
	// parent state's cached satisfying model instead of a solver call.
	ModelHits    int
	MaxStatesHit bool
	// CheckPanics counts Backend.Check calls that panicked and were
	// contained: the engine recovers, reports the check as Unknown, and
	// keeps exploring. A sound backend never panics; this counter is the
	// audit trail for a faulty one.
	CheckPanics int
	Time         time.Duration
	Solver       constraint.Stats

	// Memo counters of a version-chain session run (zero without Config.Memo).
	// Like the solver counters they include speculative work, so their split
	// may vary with parallelism; the exploration outcome does not.
	//
	// MemoHits counts branch feasibility decisions answered by a recorded
	// verdict from the execution-tree trie — decisions that made no
	// constraint.Backend.Check call at all.
	MemoHits int
	// MemoStatesReplayed counts state expansions served on a matched trie
	// node carrying recorded facts; MemoStatesLive counts expansions that
	// recorded fresh facts (unmatched, wiped, or never-recorded nodes).
	MemoStatesReplayed int
	MemoStatesLive     int

	// State-merging counters of a run with Config.MergeBound set (zero
	// otherwise).
	//
	// Merges counts merge operations: sibling groups fused at a join.
	Merges int
	// MergedStatesSaved counts states absorbed by merges — for each merge
	// of k siblings, k-1 states that were not separately explored.
	MergedStatesSaved int
	// IteNodes counts the distinct sym.ITE nodes interned during the run
	// (approximate when other runs intern concurrently).
	IteNodes int
}

// Engine symbolically executes one procedure.
//
// The engine threads ONE constraint-solver context through the states it
// expands: the backend's assertion stack always mirrors the path condition
// of the state being expanded (one frame per branch constraint),
// synchronized in Step by diffing against the previous state's path
// condition — push when descending into a branch, pop when moving to a
// sibling or an ancestor. States expanded consecutively therefore share all
// solver state attached to their common prefix (propagation snapshots,
// cached verdicts, witness models), which is what makes branch feasibility
// checks incremental instead of from-scratch re-solves of the whole path
// condition. An engine serves one goroutine; parallel exploration runs one
// engine fork per worker (Fork), each with its own solver context, sharing
// a prefix cache.
type Engine struct {
	Prog    *ast.Program
	Proc    *ast.Procedure
	Graph   *cfg.Graph
	Backend constraint.Backend

	config       Config
	domains      map[string]solver.Interval
	stats        Stats
	depthBound   int
	interruptErr error
	// memoKeys maps this graph's node IDs to their stable keys, resolved at
	// build time when Config.Memo is set (read-only thereafter; forks share
	// it).
	memoKeys map[int]string
	// memoGen is the trie's step generation captured when the initial state
	// is built; every trie node this run touches is stamped with it, which
	// is what lets the trie's budget enforcement tell replayed/live nodes
	// from retained-but-unmatched ones.
	memoGen uint64
	// stack mirrors the constraints currently asserted on the Backend, one
	// frame per path-condition conjunct.
	stack []sym.Expr
	// pcScratch is the reusable buffer syncPC materializes a state's
	// path-condition list into; it keeps stack syncing allocation-free in
	// steady state.
	pcScratch []sym.Expr
}

// New type-checks the program, builds the CFG of procedure procName, and
// returns an engine ready to run.
func New(prog *ast.Program, procName string, config Config) (*Engine, error) {
	if _, err := types.Check(prog); err != nil {
		return nil, fmt.Errorf("symexec: %w", err)
	}
	proc := prog.Proc(procName)
	if proc == nil {
		return nil, fmt.Errorf("symexec: procedure %q not found", procName)
	}
	return build(prog, proc, nil, config)
}

// NewPrepared builds an engine from a program that the caller has already
// type-checked and a CFG already built for proc. It skips the type check and
// CFG construction of New — the point of the facade's parse/CFG cache — but
// still rejects procedures with unexpanded calls. The graph may be shared
// across engines provided its analyses were precomputed (cfg.Precompute).
func NewPrepared(prog *ast.Program, proc *ast.Procedure, g *cfg.Graph, config Config) (*Engine, error) {
	return build(prog, proc, g, config)
}

// CheckNoCalls rejects procedures containing unexpanded calls: the engine
// (and cfg.Build) operate on single-procedure bodies; callers must expand
// calls with the inline package first.
func CheckNoCalls(proc *ast.Procedure) error {
	var callErr error
	ast.Walk(proc.Body.Stmts, func(s ast.Stmt) {
		if c, ok := s.(*ast.Call); ok && callErr == nil {
			callErr = fmt.Errorf("symexec: procedure %q calls %q; expand calls with the inline package first", proc.Name, c.Callee)
		}
	})
	return callErr
}

func build(prog *ast.Program, proc *ast.Procedure, g *cfg.Graph, config Config) (*Engine, error) {
	if err := CheckNoCalls(proc); err != nil {
		return nil, err
	}
	if _, err := strategyFor(config.Strategy); err != nil {
		return nil, err
	}
	if config.ExploreParallelism < 0 || config.ExploreParallelism > MaxExploreParallelism {
		return nil, fmt.Errorf("symexec: explore parallelism %d out of range [0, %d] (0 or 1 = sequential)",
			config.ExploreParallelism, MaxExploreParallelism)
	}
	if config.MergeBound != 0 {
		if config.MergeBound == 1 || config.MergeBound < MergeUnbounded {
			return nil, fmt.Errorf("symexec: merge bound %d out of range (0 = off, %d = unbounded, >= 2 = bounded)",
				config.MergeBound, MergeUnbounded)
		}
		if config.Memo != nil {
			return nil, fmt.Errorf("symexec: state merging is incompatible with a memoized session trie: recorded verdicts are keyed by per-path conjunctions, which merging replaces with factored disjunctions")
		}
		if config.MergeBudget < 0 {
			return nil, fmt.Errorf("symexec: merge budget %d is negative (0 = unlimited)", config.MergeBudget)
		}
	}
	if config.ExploreParallelism > 1 && config.SolverCache == nil {
		// Parallel exploration forks the engine, one solver context per
		// worker; give the forks a common prefix cache so they reuse each
		// other's solved prefixes even when the caller did not provide one.
		config.SolverCache = constraint.NewPrefixCache(0)
	}
	if g == nil {
		g = cfg.Build(proc)
	}
	e := &Engine{
		Prog:    prog,
		Proc:    proc,
		Graph:   g,
		config:  config,
		domains: map[string]solver.Interval{},
	}
	e.depthBound = config.DepthBound
	if e.depthBound == 0 {
		e.depthBound = 1000
	}
	if config.Memo != nil {
		// Resolve the stable keys here, on the construction goroutine, so
		// forks (and the graph cache) only ever read them.
		e.memoKeys = g.StableKeys()
	}
	intDomain := config.IntDomain
	if intDomain == (solver.Interval{}) {
		intDomain = solver.DefaultDomain
	}
	// Symbolic inputs: parameters always; globals unless ConcreteGlobals.
	for _, p := range proc.Params {
		if p.Type == ast.TypeBool {
			e.domains[symbolName(p.Name)] = solver.BoolDomain
		} else {
			e.domains[symbolName(p.Name)] = intDomain
		}
	}
	if !config.ConcreteGlobals {
		for _, gl := range prog.Globals {
			if gl.Type == ast.TypeBool {
				e.domains[symbolName(gl.Name)] = solver.BoolDomain
			} else {
				e.domains[symbolName(gl.Name)] = intDomain
			}
		}
	}
	backend, err := constraint.New(config.SolverBackend, constraint.Options{
		Domains:    e.domains,
		NodeBudget: config.SolverOptions.NodeBudget,
		Interrupt:  config.SolverOptions.Interrupt,
		Cache:      config.SolverCache,
		SMT:        config.SolverSMT,
		Portfolio:  config.SolverPortfolio,
	})
	if err != nil {
		return nil, fmt.Errorf("symexec: %w", err)
	}
	e.Backend = backend
	return e, nil
}

// Fork returns a new engine over the same procedure, graph and
// configuration, with a fresh constraint-backend context (its own assertion
// stack) and zeroed counters. The graph, program and domains are shared —
// they are read-only after construction — and the fork's backend shares the
// original's prefix cache when one is configured. Parallel exploration runs
// one fork per worker.
func (e *Engine) Fork() (*Engine, error) {
	ne := &Engine{
		Prog:       e.Prog,
		Proc:       e.Proc,
		Graph:      e.Graph,
		config:     e.config,
		domains:    e.domains,
		depthBound: e.depthBound,
		memoKeys:   e.memoKeys,
	}
	backend, err := constraint.New(e.config.SolverBackend, constraint.Options{
		Domains:    e.domains,
		NodeBudget: e.config.SolverOptions.NodeBudget,
		Interrupt:  e.config.SolverOptions.Interrupt,
		Cache:      e.config.SolverCache,
		SMT:        e.config.SolverSMT,
		Portfolio:  e.config.SolverPortfolio,
	})
	if err != nil {
		return nil, fmt.Errorf("symexec: %w", err)
	}
	ne.Backend = backend
	return ne, nil
}

// MemoSignature digests everything a recorded solver verdict's validity
// depends on besides the path condition itself: the symbolic input domains,
// the initial environment (parameters and globals, concrete or symbolic),
// the backend the verdicts came from (backends may disagree, e.g. wraparound
// vs unbounded arithmetic), and the node budget (which decides where
// Unknown — treated as unsat — cuts in). A version-chain session compares
// the signatures of consecutive versions and invalidates its whole trie on
// any difference, e.g. an edit that adds a parameter or re-types a global.
func (e *Engine) MemoSignature() string {
	var b strings.Builder
	names := make([]string, 0, len(e.domains))
	for n := range e.domains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := e.domains[n]
		fmt.Fprintf(&b, "%s∈[%d,%d];", n, d.Lo, d.Hi)
	}
	b.WriteString("|env:")
	for _, p := range e.Proc.Params {
		fmt.Fprintf(&b, "%s=%s;", p.Name, symbolName(p.Name))
	}
	for _, gl := range e.Prog.Globals {
		if e.config.ConcreteGlobals {
			fmt.Fprintf(&b, "%s:=%s;", gl.Name, gl.Init.String())
		} else {
			fmt.Fprintf(&b, "%s=%s;", gl.Name, symbolName(gl.Name))
		}
	}
	fmt.Fprintf(&b, "|backend=%s budget=%d", e.config.SolverBackend, e.config.SolverOptions.NodeBudget)
	return b.String()
}

// symbolName maps a program variable to its symbolic input name, following
// the paper's convention (§2.1): variable x gets symbol X, PedalPos stays
// PedalPos.
func symbolName(varName string) string {
	if varName == "" {
		return varName
	}
	c := varName[0]
	if c >= 'a' && c <= 'z' {
		return string(c-'a'+'A') + varName[1:]
	}
	return varName
}

// SymbolName exposes the symbol naming convention to other packages.
func SymbolName(varName string) string { return symbolName(varName) }

// Domains returns the solver domains of the symbolic inputs.
func (e *Engine) Domains() map[string]solver.Interval {
	out := make(map[string]solver.Interval, len(e.domains))
	for k, v := range e.domains {
		out[k] = v
	}
	return out
}

// Stats returns a snapshot of the engine's counters, including solver stats.
func (e *Engine) Stats() Stats {
	st := e.stats
	st.Solver = e.Backend.Stats()
	return st
}

// ResetStats zeroes all counters (engine and solver).
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.Backend.ResetStats()
}

// InterruptErr returns the error that aborted the exploration, or nil. It is
// set the first time Config.Interrupt returns non-nil; once set, Step
// produces no further successors.
func (e *Engine) InterruptErr() error { return e.interruptErr }

// BudgetExhausted reports whether the MaxStates safety valve has tripped,
// recording the event in the stats. Search loops (full and directed) consult
// it before expanding a state.
func (e *Engine) BudgetExhausted() bool {
	if e.config.MaxStates > 0 && e.stats.StatesExplored >= e.config.MaxStates {
		e.stats.MaxStatesHit = true
		return true
	}
	return false
}

// DepthBound returns the effective path depth bound.
func (e *Engine) DepthBound() int { return e.depthBound }

// syncStack aligns the backend's assertion stack with the path condition
// pc: it pops frames down to the longest common prefix, then pushes one
// frame per remaining conjunct. Under the default depth-first strategy,
// sibling states share their PC prefix (path conditions are extended by
// append-on-fork), so a step to a sibling pops one frame and pushes one,
// and a descent pushes exactly one — the push/pop discipline of incremental
// solving. Every other exploration order (BFS, directed priority, a
// parallel worker picking up an arbitrary frontier state) remains correct,
// just with more stack traffic; this PC-diff is what lets the scheduler
// expand states in any order.
func (e *Engine) syncStack(pc []sym.Expr) {
	n := 0
	//diselint:ignore interruptloop bounded: advances one frame per iteration, capped by min(len(stack), len(pc))
	for n < len(e.stack) && n < len(pc) && sameExpr(e.stack[n], pc[n]) {
		n++
	}
	//diselint:ignore interruptloop bounded: pops one frame per iteration, capped by len(stack)
	for len(e.stack) > n {
		e.Backend.Pop()
		e.stack = e.stack[:len(e.stack)-1]
	}
	for _, c := range pc[len(e.stack):] {
		e.Backend.Push()
		e.Backend.Assert(c)
		e.stack = append(e.stack, c)
	}
}

// sameExpr compares path-condition conjuncts. Expressions built by the
// smart constructors are hash-consed, so pointer equality decides both ways
// for them; sym.Equal's structural walk only ever runs for un-interned
// literals from test code.
func sameExpr(a, b sym.Expr) bool {
	return a == b || sym.Equal(a, b)
}

// syncPC aligns the backend's assertion stack with the path condition of s,
// materializing the prefix-shared list into the engine's scratch buffer
// (no allocation in steady state).
func (e *Engine) syncPC(s *State) {
	e.pcScratch = s.PC.AppendTo(e.pcScratch[:0])
	e.syncStack(e.pcScratch)
}

// checkBranch decides PC ∧ c where PC is the currently synced stack, using
// a transient frame so the stack is unchanged on return.
func (e *Engine) checkBranch(c sym.Expr) constraint.Result {
	e.Backend.Push()
	e.Backend.Assert(c)
	res := e.safeCheck()
	e.Backend.Pop()
	return res
}

// safeCheck contains a panicking Backend.Check: the engine recovers,
// counts the event (Stats.CheckPanics) and treats the check as Unknown, so
// a faulty backend degrades an exploration's precision instead of tearing
// down the whole analysis (or, in the service, the process). Only Check is
// contained — a panic in Push/Pop/Assert indicates a stack-discipline bug
// in the engine itself and must stay loud.
func (e *Engine) safeCheck() (res constraint.Result) {
	defer func() {
		if r := recover(); r != nil {
			e.stats.CheckPanics++
			res = constraint.Result{Unknown: true}
		}
	}()
	return e.Backend.Check()
}

// CheckPC decides an arbitrary path condition against the engine's input
// domains, syncing the backend stack to it. Callers solving many related
// path conditions (test generation over the paths of one run) benefit from
// the same prefix reuse as the exploration itself.
func (e *Engine) CheckPC(pc []sym.Expr) constraint.Result {
	e.syncStack(pc)
	return e.safeCheck()
}

// InitialState builds the state at the begin node: parameters and (by
// default) globals bound to fresh symbolic values, path condition true.
func (e *Engine) InitialState() *State {
	m := map[string]sym.Expr{}
	for _, p := range e.Proc.Params {
		m[p.Name] = sym.V(symbolName(p.Name))
	}
	for _, gl := range e.Prog.Globals {
		if e.config.ConcreteGlobals {
			switch init := gl.Init.(type) {
			case *ast.IntLit:
				m[gl.Name] = sym.Int(init.Value)
			case *ast.BoolLit:
				m[gl.Name] = sym.Bool(init.Value)
			}
		} else {
			m[gl.Name] = sym.V(symbolName(gl.Name))
		}
	}
	env := NewEnv(m)
	// Locals start undefined; the type checker guarantees they are assigned
	// before use on every executable path of well-formed artifacts.
	e.stats.StatesExplored++
	// The empty path condition is satisfied by the least element of every
	// input domain; seed the model cache with it.
	model := make(map[string]int64, len(e.domains))
	for name, d := range e.domains {
		model[name] = d.Lo
	}
	s := &State{Node: e.Graph.Begin, Env: env, PC: nil, Trace: nil, model: model}
	if e.config.Memo != nil {
		e.memoGen = e.config.Memo.Gen()
		s.memo = e.config.Memo.Root(e.memoKeys[e.Graph.Begin.ID])
	}
	return s
}

// Step is the result of executing one CFG node symbolically.
type Step struct {
	// Feasible lists the feasible successor states, true-branch first.
	Feasible []*State
	// InfeasibleTargets lists CFG nodes that are branch targets whose branch
	// constraint was unsatisfiable. Directed search needs these: the target
	// instruction was reached by the executor even though no state continues
	// through it (in SPF the branch target is touched before the solver
	// rejects the choice), so DiSE marks it explored rather than letting an
	// unreachable-in-context affected node attract further exploration.
	InfeasibleTargets []*cfg.Node
}

// Successors executes the node of s and returns the feasible successor
// states, true-branch first. It returns nil when s is at the end node or the
// error sink (terminal states) or when the depth bound is exceeded.
func (e *Engine) Successors(s *State) []*State {
	return e.Step(s).Feasible
}

// Step executes the node of s, reporting both feasible successors and
// infeasible branch targets. After an interrupt (Config.Interrupt returned
// non-nil) it produces no successors, so any search loop built on it unwinds
// within one step.
func (e *Engine) Step(s *State) Step {
	if e.interruptErr != nil {
		return Step{}
	}
	if e.config.Interrupt != nil {
		if err := e.config.Interrupt(); err != nil {
			e.interruptErr = err
			return Step{}
		}
	}
	n := s.Node
	switch n.Kind {
	case cfg.KindEnd, cfg.KindError:
		return Step{}
	}
	if s.Depth >= e.depthBound {
		e.stats.DepthBoundHits++
		return Step{}
	}

	rec := e.memoEnter(s)
	var out Step
	// Branch arms and path-condition contributions of out.Feasible, tracked
	// only when rec != nil (the chain invariant's induction data).
	var vias []int8
	var viaConds []sym.Expr
	switch n.Kind {
	case cfg.KindBegin, cfg.KindNop:
		succ := s.fork(n.Succs[0].To)
		succ.appendTraceIfStmt(n)
		out.Feasible = append(out.Feasible, succ)
		if rec != nil {
			vias, viaConds = append(vias, memo.ViaFlow), append(viaConds, nil)
		}
	case cfg.KindWrite:
		a := n.Stmt.(*ast.Assign)
		val := e.evalExpr(a.Value, s.Env)
		succ := s.fork(n.Succs[0].To)
		succ.Env = succ.Env.Set(a.Name, val)
		succ.appendTraceIfStmt(n)
		out.Feasible = append(out.Feasible, succ)
		if rec != nil {
			vias, viaConds = append(vias, memo.ViaFlow), append(viaConds, nil)
		}
	case cfg.KindCond:
		cond := e.evalExpr(n.Cond, s.Env)
		for arm, branch := range []struct {
			c  sym.Expr
			to *cfg.Node
		}{
			{cond, n.TrueSucc()},
			{sym.NotE(cond), n.FalseSucc()},
		} {
			via := int8(arm) // memo.ViaTrue / memo.ViaFalse
			switch c := branch.c.(type) {
			case *sym.BoolConst:
				if !c.V {
					// Branch statically impossible (the condition folded to a
					// constant under this path's environment). Report the
					// target as infeasible, like a solver-refuted branch, so
					// the directed search marks it explored instead of
					// chasing it through unaffected variations.
					out.InfeasibleTargets = append(out.InfeasibleTargets, branch.to)
					continue
				}
				succ := s.fork(branch.to)
				succ.appendTraceIfStmt(n)
				if branch.to.Kind == cfg.KindError {
					succ.Err = true
				}
				out.Feasible = append(out.Feasible, succ)
				if rec != nil {
					// A folded branch appends no conjunct: nil contribution.
					vias, viaConds = append(vias, via), append(viaConds, nil)
				}
			default:
				var model map[string]int64
				if s.model != nil {
					if v, err := solver.EvalInt01(c, s.model); err == nil && v != 0 {
						// The parent's witness already satisfies the branch
						// constraint: PC ∧ c is satisfiable without solving.
						model = s.model
						e.stats.ModelHits++
					}
				}
				if model == nil && rec != nil {
					// Memo replay: a previous version's run decided this
					// exact conjunction (the chain invariant guarantees the
					// node's recorded facts share this state's path
					// condition; structural equality matches the constraint),
					// so its verdict — and, for Sat, its deterministic
					// witness — stands in for the backend with no Check call
					// at all. The parent-model fast path above runs first,
					// exactly as in a cold run, so the core counters stay
					// byte-identical.
					if v, ok := rec.Lookup(branch.c); ok {
						e.stats.MemoHits++
						if !v.Sat {
							e.stats.InfeasibleBranches++
							out.InfeasibleTargets = append(out.InfeasibleTargets, branch.to)
							continue
						}
						model = v.Model
					}
				}
				if model == nil {
					// Align the backend's assertion stack with this state's
					// path condition (pop back to the shared prefix, push the
					// rest), then decide PC ∧ c in a transient frame. The
					// feasible branch's constraint is re-pushed when the
					// search descends into it; the backend's prefix machinery
					// makes that re-push recall this verdict instead of
					// re-solving.
					e.syncPC(s)
					res := e.checkBranch(branch.c)
					if rec != nil && !res.Unknown {
						// Unknown is budget- and interrupt-dependent; only
						// definitive verdicts become facts of the trie.
						rec.Record(branch.c, res.Sat, res.Model)
					}
					if !res.Sat {
						e.stats.InfeasibleBranches++
						out.InfeasibleTargets = append(out.InfeasibleTargets, branch.to)
						continue
					}
					model = res.Model
				}
				succ := s.fork(branch.to)
				succ.PC = succ.PC.Append(branch.c)
				succ.model = model
				succ.appendTraceIfStmt(n)
				if branch.to.Kind == cfg.KindError {
					succ.Err = true
				}
				out.Feasible = append(out.Feasible, succ)
				if rec != nil {
					vias, viaConds = append(vias, via), append(viaConds, branch.c)
				}
			}
		}
	default:
		panic(fmt.Sprintf("symexec: cannot execute node %v", n))
	}
	if rec != nil {
		e.memoLink(rec, out.Feasible, vias, viaConds)
	}
	e.stats.StatesExplored += len(out.Feasible)
	return out
}

// memoEnter resolves the memo-trie node of a state about to be expanded.
// The node's identity (stable key) is re-learned on divergence — e.g. an
// inserted statement shifted the walk's alignment — but never gates replay:
// data validity rests entirely on the chain invariant (internal/memo), which
// memoLink enforces when children are attached.
func (e *Engine) memoEnter(s *State) *memo.Node {
	rec := s.memo
	if rec == nil {
		return nil
	}
	rec.Key = e.memoKeys[s.Node.ID]
	rec.Touch(e.memoGen)
	if rec.Expanded {
		e.stats.MemoStatesReplayed++
	} else {
		e.stats.MemoStatesLive++
	}
	return rec
}

// memoLink attaches trie nodes to the successors of an expansion. A recorded
// child is reused only when both its branch arm and its path-condition
// contribution match the successor's (the chain invariant's induction step:
// matching by arm keeps a diamond-shaped join from inheriting the other
// arm's context, matching by contribution keeps recorded facts bound to
// their exact conjunction); otherwise the successor gets a fresh node.
// Recorded children the expansion did not re-match are retained behind the
// attached ones: their conjunctions simply do not occur in this version, but
// a later version may produce them again — most commonly when an edit is
// reverted, the dominant pattern of a version chain revisiting behaviors.
func (e *Engine) memoLink(rec *memo.Node, feasible []*State, vias []int8, viaConds []sym.Expr) {
	succs := make([]*memo.Node, 0, len(feasible)+len(rec.Succs))
	attached := make(map[*memo.Node]bool, len(feasible))
	for i, st := range feasible {
		c := rec.Child(vias[i], viaConds[i])
		if c == nil {
			c = &memo.Node{Key: e.memoKeys[st.Node.ID], Via: vias[i], ViaCond: viaConds[i]}
		}
		c.Touch(e.memoGen)
		attached[c] = true
		succs = append(succs, c)
		st.memo = c
	}
	for _, c := range rec.Succs {
		if c != nil && !attached[c] {
			succs = append(succs, c)
		}
	}
	rec.Succs = succs
	rec.Expanded = true
}

// appendTraceIfStmt records the executed node in the successor's trace when
// it corresponds to a source statement. The successor shares the parent's
// trace slice after fork, so the append always copies — sized exactly, with
// no spare capacity a sibling could race on.
func (s *State) appendTraceIfStmt(n *cfg.Node) {
	switch n.Kind {
	case cfg.KindCond, cfg.KindWrite, cfg.KindNop:
		t := make([]int, len(s.Trace)+1)
		copy(t, s.Trace)
		t[len(s.Trace)] = n.ID
		s.Trace = t
	}
}

// Terminal reports whether s completed a path (end node or error sink).
func (e *Engine) Terminal(s *State) bool {
	return s.Node.Kind == cfg.KindEnd || s.Node.Kind == cfg.KindError
}

// Collect converts a terminal state into a Path record, materializing the
// copy-on-write path condition and environment — this is the one place the
// shared-tail PC list and the layered Env become plain slices and maps.
func (e *Engine) Collect(s *State) Path {
	e.stats.PathsExplored++
	pc := s.PC.Slice()
	return Path{
		PC:       pc,
		PCString: sym.Conjoin(pc),
		Env:      s.Env.Map(),
		Trace:    s.Trace,
		Cover:    s.Cover,
		Err:      s.Err || s.Node.Kind == cfg.KindError,
	}
}

// RunFull performs full (traditional) symbolic execution: every feasible
// path up to the depth bound, explored by the scheduler in the configured
// strategy order (depth-first by default) with the configured intra-query
// parallelism. This is the "Full Symbc" control technique of the paper's
// evaluation. The path set is the same for every strategy and parallelism
// level; sequential runs emit paths in strategy order, parallel runs in
// canonical tree order.
func (e *Engine) RunFull() *Summary {
	start := time.Now()
	summary := NewExplorer(e, ExploreOptions{}).Run()
	summary.Stats.Time = time.Since(start)
	e.stats.Time = summary.Stats.Time
	return summary
}

// evalExpr maps an AST expression to a symbolic expression under env, using
// the smart constructors so constants fold as execution proceeds.
func (e *Engine) evalExpr(x ast.Expr, env Env) sym.Expr {
	switch x := x.(type) {
	case *ast.IntLit:
		return sym.Int(x.Value)
	case *ast.BoolLit:
		return sym.Bool(x.Value)
	case *ast.Ident:
		if v, ok := env.Get(x.Name); ok {
			return v
		}
		// Reading an unassigned local: treat as a fresh symbol so execution
		// can proceed; the type checker flags genuinely undefined names.
		return sym.V(symbolName(x.Name))
	case *ast.Unary:
		inner := e.evalExpr(x.X, env)
		switch x.Op {
		case token.NOT:
			return sym.NotE(inner)
		case token.MINUS:
			return sym.NegE(inner)
		}
	case *ast.Binary:
		l := e.evalExpr(x.L, env)
		r := e.evalExpr(x.R, env)
		switch x.Op {
		case token.PLUS:
			return sym.Add(l, r)
		case token.MINUS:
			return sym.Sub(l, r)
		case token.STAR:
			return sym.Mul(l, r)
		case token.SLASH:
			return sym.Div(l, r)
		case token.PERCENT:
			return sym.Mod(l, r)
		case token.EQ:
			return sym.Cmp(sym.OpEQ, l, r)
		case token.NEQ:
			return sym.Cmp(sym.OpNE, l, r)
		case token.LT:
			return sym.Cmp(sym.OpLT, l, r)
		case token.LE:
			return sym.Cmp(sym.OpLE, l, r)
		case token.GT:
			return sym.Cmp(sym.OpGT, l, r)
		case token.GE:
			return sym.Cmp(sym.OpGE, l, r)
		case token.LAND:
			return sym.AndE(l, r)
		case token.LOR:
			return sym.OrE(l, r)
		}
	}
	panic(fmt.Sprintf("symexec: cannot evaluate expression %T", x))
}
