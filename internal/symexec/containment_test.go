package symexec

import (
	"sync"
	"testing"

	"dise/internal/constraint"
	"dise/internal/constraint/chaos"
	"dise/internal/sym"
)

var registerPanicky sync.Once

// registerPanickyBackends installs chaos-wrapped backends that panic out
// of Check on a deterministic schedule, for the engine's containment
// tests.
func registerPanickyBackends() {
	registerPanicky.Do(func() {
		constraint.Register("test-panic-every-2", func(o constraint.Options) (constraint.Backend, error) {
			inner, err := constraint.New(constraint.BackendInterval, o)
			if err != nil {
				return nil, err
			}
			return chaos.Wrap(inner, chaos.Plan{Fault: chaos.Crash, EveryN: 2}), nil
		})
		constraint.Register("test-panic-always", func(o constraint.Options) (constraint.Backend, error) {
			inner, err := constraint.New(constraint.BackendInterval, o)
			if err != nil {
				return nil, err
			}
			return chaos.Wrap(inner, chaos.Plan{Fault: chaos.Crash, EveryN: 1}), nil
		})
	})
}

// A backend panicking out of Check must not tear down the exploration:
// the engine recovers, counts the panic, reports Unknown for that branch,
// and finishes the run.
func TestCheckPanicContained(t *testing.T) {
	registerPanickyBackends()
	e := newEngine(t, fig2Source, "update", Config{SolverBackend: "test-panic-every-2"})
	summary := e.RunFull()
	st := e.Stats()
	if st.CheckPanics == 0 {
		t.Fatalf("no panics contained: %+v", st)
	}
	// Unknown branches are pruned, so the panicky run explores a subset.
	ref := newEngine(t, fig2Source, "update", Config{}).RunFull()
	if len(summary.Paths) > len(ref.Paths) {
		t.Fatalf("panicky run found %d paths, reference %d", len(summary.Paths), len(ref.Paths))
	}
}

// Even a backend that panics on every single Check only costs coverage.
func TestEveryCheckPanicContained(t *testing.T) {
	registerPanickyBackends()
	e := newEngine(t, fig2Source, "update", Config{SolverBackend: "test-panic-always"})
	summary := e.RunFull()
	st := e.Stats()
	if st.CheckPanics == 0 {
		t.Fatalf("no panics contained: %+v", st)
	}
	// Branches decided by the parent state's cached model never reach
	// Check, so a handful of paths can still complete; every branch that
	// did need the solver was pruned as Unknown.
	ref := newEngine(t, fig2Source, "update", Config{}).RunFull()
	if len(summary.Paths) >= len(ref.Paths) {
		t.Fatalf("paths = %d, want fewer than the reference %d", len(summary.Paths), len(ref.Paths))
	}
}

// CheckPC has the same containment as the exploration's branch checks.
func TestCheckPCPanicContained(t *testing.T) {
	registerPanickyBackends()
	e := newEngine(t, testXSource, "testX", Config{SolverBackend: "test-panic-always"})
	res := e.CheckPC([]sym.Expr{sym.Cmp(sym.OpGT, sym.V("X"), sym.Int(0))})
	if !res.Unknown {
		t.Fatalf("want Unknown from contained panic, got %+v", res)
	}
	if e.Stats().CheckPanics != 1 {
		t.Fatalf("stats: %+v", e.Stats())
	}
}

// The scheduler's merged stats must surface containment events from every
// worker fork.
func TestCheckPanicsMergedAcrossWorkers(t *testing.T) {
	registerPanickyBackends()
	e := newEngine(t, fig2Source, "update", Config{
		SolverBackend:      "test-panic-every-2",
		ExploreParallelism: 4,
	})
	summary := NewExplorer(e, ExploreOptions{}).Run()
	if summary.Stats.CheckPanics == 0 {
		t.Fatalf("merged stats lost CheckPanics: %+v", summary.Stats)
	}
}
