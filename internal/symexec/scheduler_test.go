package symexec

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dise/internal/lang/parser"
)

// loopSource exercises depth-bound hits and back edges.
const loopSource = `
proc count(int n) {
  i = 0;
  while (i < n) {
    i = i + 1;
  }
}
`

// infeasibleSource has a branch the solver must refute.
const infeasibleSource = `
proc p(int x) {
  if (x > 10) {
    if (x < 5) {
      y = 1;
    } else {
      y = 2;
    }
  } else {
    y = 3;
  }
}
`

// --- frontier unit tests -----------------------------------------------------

func popAll(f Frontier) []int {
	var out []int
	//diselint:ignore interruptloop test helper: drains a finite frontier, Pop reports exhaustion
	for {
		it, ok := f.Pop()
		if !ok {
			return out
		}
		out = append(out, int(it.Seq))
	}
}

func TestFrontierOrders(t *testing.T) {
	item := func(seq int, score int) *Item { return &Item{Seq: uint64(seq), Score: score} }

	t.Run("dfs", func(t *testing.T) {
		f := &lifoFrontier{}
		f.Push(item(1, 0))
		f.Push(item(2, 0), item(3, 0)) // sibling batch: 2 must pop before 3
		if got, want := popAll(f), []int{2, 3, 1}; !reflect.DeepEqual(got, want) {
			t.Errorf("lifo order = %v, want %v", got, want)
		}
	})
	t.Run("bfs", func(t *testing.T) {
		f := &fifoFrontier{}
		f.Push(item(1, 0))
		f.Push(item(2, 0), item(3, 0))
		if got, want := popAll(f), []int{1, 2, 3}; !reflect.DeepEqual(got, want) {
			t.Errorf("fifo order = %v, want %v", got, want)
		}
	})
	t.Run("scored", func(t *testing.T) {
		f := newScoredFrontier(nil)
		f.Push(item(1, 5), item(2, 1), item(3, 5), item(4, 0))
		// Lowest score first; insertion order breaks ties (1 before 3).
		if got, want := popAll(f), []int{4, 2, 1, 3}; !reflect.DeepEqual(got, want) {
			t.Errorf("scored order = %v, want %v", got, want)
		}
	})
}

func TestStrategiesListedDefaultFirst(t *testing.T) {
	names := Strategies()
	if len(names) < 3 || names[0] != StrategyDFS {
		t.Fatalf("Strategies() = %v, want dfs first with at least bfs and directed", names)
	}
	if _, err := strategyFor("no-such-strategy"); err == nil {
		t.Fatal("unknown strategy must not resolve")
	}
}

// --- scheduler vs. pre-refactor recursion ------------------------------------

// oracleRunFull is a transliteration of the recursive depth-first
// exploration the scheduler replaced. The DFS strategy at parallelism 1 must
// reproduce it byte for byte: same paths, same order, same counters.
func oracleRunFull(e *Engine) *Summary {
	summary := &Summary{}
	var rec func(s *State)
	rec = func(s *State) {
		if e.interruptErr != nil || e.BudgetExhausted() {
			return
		}
		if e.Terminal(s) {
			summary.Paths = append(summary.Paths, e.Collect(s))
			return
		}
		for _, succ := range e.Successors(s) {
			rec(succ)
		}
	}
	rec(e.InitialState())
	summary.Stats = e.Stats()
	return summary
}

// pathKey renders a path for comparison: path condition plus trace, so two
// paths differing only in unconstrained suffix nodes stay distinct.
func pathKey(p Path) string { return fmt.Sprintf("%s %v err=%v", p.PCString, p.Trace, p.Err) }

func pathKeys(s *Summary) []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = pathKey(p)
	}
	return out
}

var schedulerSubjects = []struct {
	name, src, proc string
}{
	{"testX", testXSource, "testX"},
	{"fig2", fig2Source, "update"},
	{"loop", loopSource, "count"},
	{"infeasible", infeasibleSource, "p"},
}

func TestSchedulerDFSMatchesRecursiveOracle(t *testing.T) {
	for _, subject := range schedulerSubjects {
		t.Run(subject.name, func(t *testing.T) {
			config := Config{DepthBound: 40}
			want := oracleRunFull(newEngine(t, subject.src, subject.proc, config))
			got := newEngine(t, subject.src, subject.proc, config).RunFull()
			if !reflect.DeepEqual(pathKeys(want), pathKeys(got)) {
				t.Errorf("paths differ:\noracle: %v\nsched:  %v", pathKeys(want), pathKeys(got))
			}
			wc, gc := coreOf(want.Stats), coreOf(got.Stats)
			if wc != gc {
				t.Errorf("core stats differ: oracle %+v, scheduler %+v", wc, gc)
			}
			if want.Stats.PathsExplored != got.Stats.PathsExplored {
				t.Errorf("paths explored: oracle %d, scheduler %d",
					want.Stats.PathsExplored, got.Stats.PathsExplored)
			}
			if want.Stats.Solver.Checks != got.Stats.Solver.Checks {
				t.Errorf("solver checks: oracle %d, scheduler %d",
					want.Stats.Solver.Checks, got.Stats.Solver.Checks)
			}
		})
	}
}

// TestSchedulerStrategyAndParallelismEquivalence pins the full-SE
// scheduler-equivalence property: every strategy at every parallelism level
// produces the same path set; parallel runs additionally emit in canonical
// tree order (= the DFS sequential order), so their output is deterministic.
func TestSchedulerStrategyAndParallelismEquivalence(t *testing.T) {
	for _, subject := range schedulerSubjects {
		t.Run(subject.name, func(t *testing.T) {
			reference := newEngine(t, subject.src, subject.proc, Config{DepthBound: 40}).RunFull()
			refOrdered := pathKeys(reference)
			refSorted := append([]string{}, refOrdered...)
			sort.Strings(refSorted)
			for _, strategy := range Strategies() {
				for _, par := range []int{1, 4} {
					name := fmt.Sprintf("%s/par%d", strategy, par)
					config := Config{DepthBound: 40, Strategy: strategy, ExploreParallelism: par}
					sum := newEngine(t, subject.src, subject.proc, config).RunFull()
					got := pathKeys(sum)
					if par > 1 {
						// Canonical assembly: exact DFS order, deterministically.
						if !reflect.DeepEqual(got, refOrdered) {
							t.Errorf("%s: parallel emission order differs from canonical:\n got %v\nwant %v",
								name, got, refOrdered)
						}
					} else {
						gotSorted := append([]string{}, got...)
						sort.Strings(gotSorted)
						if !reflect.DeepEqual(gotSorted, refSorted) {
							t.Errorf("%s: path set differs:\n got %v\nwant %v", name, gotSorted, refSorted)
						}
					}
					if gc, rc := coreOf(sum.Stats), coreOf(reference.Stats); gc != rc {
						t.Errorf("%s: core stats %+v, want %+v", name, gc, rc)
					}
					if sum.Stats.PathsExplored != reference.Stats.PathsExplored {
						t.Errorf("%s: paths explored %d, want %d",
							name, sum.Stats.PathsExplored, reference.Stats.PathsExplored)
					}
				}
			}
		})
	}
}

// TestSchedulerBFSOrderIsBreadthFirst verifies the BFS strategy genuinely
// reorders sequential emission: on testX both paths complete at the same
// depth, so the order matches DFS; on a program with paths of different
// lengths the shortest completes first.
func TestSchedulerBFSOrderIsBreadthFirst(t *testing.T) {
	const src = `
proc q(int x) {
  if (x > 0) {
    if (x > 1) {
      y = 1;
    } else {
      y = 2;
    }
  } else {
    y = 3;
  }
}
`
	sum := newEngine(t, src, "q", Config{Strategy: StrategyBFS}).RunFull()
	if len(sum.Paths) != 3 {
		t.Fatalf("paths = %d, want 3", len(sum.Paths))
	}
	// The short else-path (X <= 0) ends one level earlier and must be
	// emitted first under breadth-first order; DFS emits it last.
	if got := sum.Paths[0].PCString; got != "X <= 0" {
		t.Errorf("first BFS path = %q, want the shortest path \"X <= 0\"", got)
	}
}

// TestSchedulerParallelStatsDeterministic pins the merged-stats contract:
// the core exploration counters are identical across repeated parallel runs
// (and equal to the sequential ones), whatever the worker interleaving.
func TestSchedulerParallelStatsDeterministic(t *testing.T) {
	seq := newEngine(t, fig2Source, "update", Config{}).RunFull()
	for i := 0; i < 5; i++ {
		par := newEngine(t, fig2Source, "update", Config{ExploreParallelism: 4}).RunFull()
		if pc, sc := coreOf(par.Stats), coreOf(seq.Stats); pc != sc {
			t.Fatalf("run %d: parallel core stats %+v, want %+v", i, pc, sc)
		}
		if par.Stats.PathsExplored != seq.Stats.PathsExplored {
			t.Fatalf("run %d: paths explored %d, want %d",
				i, par.Stats.PathsExplored, seq.Stats.PathsExplored)
		}
		if par.Stats.Solver.Checks == 0 {
			t.Fatal("merged solver stats lost the per-worker counters")
		}
	}
}

func TestUnknownStrategyFailsConstruction(t *testing.T) {
	prog, err := parser.Parse(testXSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, "testX", Config{Strategy: "best-first"}); err == nil {
		t.Fatal("unknown strategy must fail engine construction")
	}
}

func TestForkSharesGraphButNotSolverContext(t *testing.T) {
	e := newEngine(t, fig2Source, "update", Config{})
	f, err := e.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if f.Graph != e.Graph || f.Prog != e.Prog {
		t.Error("fork must share the read-only graph and program")
	}
	if f.Backend == e.Backend {
		t.Error("fork must own a fresh solver context")
	}
	if f.Stats().StatesExplored != 0 {
		t.Error("fork must start with zeroed counters")
	}
}

// TestMaxStatesValveUnderScheduler pins the safety-valve behavior through
// the worklist: the run stops, MaxStatesHit is set, and at parallelism 1 the
// trip point matches the recursive engine's.
func TestMaxStatesValveUnderScheduler(t *testing.T) {
	oracleEngine := newEngine(t, fig2Source, "update", Config{MaxStates: 10})
	want := oracleRunFull(oracleEngine)
	got := newEngine(t, fig2Source, "update", Config{MaxStates: 10}).RunFull()
	if !got.Stats.MaxStatesHit {
		t.Fatal("MaxStatesHit must be set")
	}
	if !reflect.DeepEqual(pathKeys(want), pathKeys(got)) {
		t.Errorf("budget-limited paths differ:\noracle: %v\nsched:  %v", pathKeys(want), pathKeys(got))
	}
}

func TestExploreParallelismValidated(t *testing.T) {
	prog, err := parser.Parse(testXSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-1, MaxExploreParallelism + 1} {
		if _, err := New(prog, "testX", Config{ExploreParallelism: n}); err == nil {
			t.Errorf("ExploreParallelism=%d must fail engine construction", n)
		}
	}
	if _, err := New(prog, "testX", Config{ExploreParallelism: MaxExploreParallelism}); err != nil {
		t.Errorf("ExploreParallelism=%d must be accepted: %v", MaxExploreParallelism, err)
	}
}
