package symexec

import (
	"fmt"
	"strings"
)

// TreeNode is a node of the symbolic execution tree (paper §2.1, Fig. 1):
// each node is a symbolic program state and each edge a transition between
// states.
type TreeNode struct {
	State    *State
	Children []*TreeNode
	// EdgeText describes the transition that produced this node, e.g.
	// "1: if (x > 0)" for the branch taken or the assignment text.
	EdgeText string
}

// BuildTree runs full symbolic execution while recording the symbolic
// execution tree. It is intended for small illustrative programs (the tree
// grows with the number of states).
func (e *Engine) BuildTree() *TreeNode {
	root := &TreeNode{State: e.InitialState()}
	e.growTree(root)
	return root
}

func (e *Engine) growTree(t *TreeNode) {
	for _, succ := range e.Successors(t.State) {
		edge := ""
		if n := t.State.Node; n.Line > 0 {
			edge = fmt.Sprintf("%d: %s", n.Line, n.Text)
		}
		child := &TreeNode{State: succ, EdgeText: edge}
		t.Children = append(t.Children, child)
		e.growTree(child)
	}
}

// Render prints the tree with box-drawing indentation, one state per line,
// in the spirit of Fig. 1:
//
//	Loc: n0 | x: X, y: Y | PC: true
//	├── [1: x > 0] Loc: n1 | ... | PC: X > 0
//	└── [1: x > 0] Loc: n3 | ... | PC: X <= 0
func (t *TreeNode) Render() string {
	var b strings.Builder
	b.WriteString(t.State.String())
	b.WriteString("\n")
	t.renderChildren(&b, "")
	return b.String()
}

func (t *TreeNode) renderChildren(b *strings.Builder, prefix string) {
	for i, c := range t.Children {
		last := i == len(t.Children)-1
		connector, childPrefix := "├── ", prefix+"│   "
		if last {
			connector, childPrefix = "└── ", prefix+"    "
		}
		b.WriteString(prefix)
		b.WriteString(connector)
		if c.EdgeText != "" {
			fmt.Fprintf(b, "[%s] ", c.EdgeText)
		}
		b.WriteString(c.State.String())
		b.WriteString("\n")
		c.renderChildren(b, childPrefix)
	}
}

// Leaves returns the leaf states (completed or pruned paths) of the tree.
func (t *TreeNode) Leaves() []*State {
	if len(t.Children) == 0 {
		return []*State{t.State}
	}
	var out []*State
	for _, c := range t.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// CountNodes returns the number of tree nodes (states).
func (t *TreeNode) CountNodes() int {
	n := 1
	for _, c := range t.Children {
		n += c.CountNodes()
	}
	return n
}
