package symexec

import (
	"sort"
	"strings"
	"testing"

	"dise/internal/lang/parser"
	"dise/internal/solver"
)

// testXSource is the paper's §2.1 illustration: procedure testX with global
// y, whose symbolic execution tree is Fig. 1.
const testXSource = `
int y = 0;
proc testX(int x) {
  if (x > 0) {
    y = y + x;
  } else {
    y = y - x;
  }
}
`

// fig2Source is the motivating example (paper Fig. 2(a)), modified version
// (PedalPos <= 0 at the paper's line 2).
const fig2Source = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func newEngine(t *testing.T, src, proc string, config Config) *Engine {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := New(prog, proc, config)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestFig1TestXPaths(t *testing.T) {
	e := newEngine(t, testXSource, "testX", Config{})
	summary := e.RunFull()
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (Fig. 1)", len(summary.Paths))
	}
	// True branch first: PC X > 0, y = Y + X.
	p0, p1 := summary.Paths[0], summary.Paths[1]
	if p0.PCString != "X > 0" {
		t.Errorf("path 0 PC = %q, want X > 0", p0.PCString)
	}
	if got := p0.Env["y"].String(); got != "Y + X" {
		t.Errorf("path 0 y = %q, want Y + X", got)
	}
	if p1.PCString != "X <= 0" {
		t.Errorf("path 1 PC = %q, want X <= 0", p1.PCString)
	}
	if got := p1.Env["y"].String(); got != "Y - X" {
		t.Errorf("path 1 y = %q, want Y - X", got)
	}
}

func TestFig1TestXTree(t *testing.T) {
	e := newEngine(t, testXSource, "testX", Config{})
	tree := e.BuildTree()
	rendered := tree.Render()
	for _, want := range []string{
		"PC: true",
		"PC: X > 0",
		"PC: X <= 0",
		"y: Y + X",
		"y: Y - X",
		"x: X",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("tree rendering missing %q:\n%s", want, rendered)
		}
	}
	// The tree has exactly two leaves (two feasible paths), both at the end
	// node.
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(leaves))
	}
	for _, l := range leaves {
		if !e.Terminal(l) {
			t.Errorf("leaf %v is not terminal", l)
		}
	}
	if tree.CountNodes() != e.Stats().StatesExplored {
		t.Errorf("tree nodes = %d, states explored = %d; must match", tree.CountNodes(), e.Stats().StatesExplored)
	}
}

func TestFig2Full21PathConditions(t *testing.T) {
	// The paper (§2.2): "Using full symbolic execution to validate this
	// change results in 21 path conditions."
	e := newEngine(t, fig2Source, "update", Config{})
	summary := e.RunFull()
	if len(summary.Paths) != 21 {
		var pcs []string
		for _, p := range summary.Paths {
			pcs = append(pcs, p.PCString)
		}
		t.Fatalf("path conditions = %d, want 21 (paper §2.2)\n%s", len(summary.Paths), strings.Join(pcs, "\n"))
	}
	// All path conditions must be distinct.
	seen := map[string]bool{}
	for _, p := range summary.Paths {
		if seen[p.PCString] {
			t.Errorf("duplicate path condition %q", p.PCString)
		}
		seen[p.PCString] = true
	}
	// Infeasible branch pruning must have occurred (the PedalCmd == 2 arm is
	// infeasible in two of the three first-arm contexts).
	if summary.Stats.InfeasibleBranches == 0 {
		t.Error("expected some infeasible branches")
	}
}

func TestFig2FullRangeDomainGives24(t *testing.T) {
	// Ablation (DESIGN.md §5.1): over a full-range domain the PedalCmd==2
	// branches become feasible in every arm — 24 paths instead of 21.
	e := newEngine(t, fig2Source, "update", Config{IntDomain: solver.Interval{Lo: -1_000_000, Hi: 1_000_000}})
	summary := e.RunFull()
	if len(summary.Paths) != 24 {
		t.Fatalf("full-range path conditions = %d, want 24", len(summary.Paths))
	}
}

func TestTracesFollowCFG(t *testing.T) {
	e := newEngine(t, fig2Source, "update", Config{})
	summary := e.RunFull()
	for _, p := range summary.Paths {
		// Each trace must be a valid CFG walk: consecutive nodes connected.
		for i := 0; i+1 < len(p.Trace); i++ {
			from := e.Graph.Nodes[p.Trace[i]]
			connected := false
			for _, edge := range from.Succs {
				if edge.To.ID == p.Trace[i+1] {
					connected = true
				}
			}
			if !connected {
				t.Fatalf("trace %v has no edge n%d -> n%d", p.Trace, p.Trace[i], p.Trace[i+1])
			}
		}
	}
}

func TestLoopDepthBound(t *testing.T) {
	src := `proc spin(int n) {
		i = 0;
		while (i < n) {
			i = i + 1;
		}
	}`
	// Unbounded n over [0, 10^6] would yield a million unrollings; a small
	// depth bound must terminate the run and count the hits.
	e := newEngine(t, src, "spin", Config{DepthBound: 30})
	summary := e.RunFull()
	if summary.Stats.DepthBoundHits == 0 {
		t.Error("expected depth bound hits")
	}
	if len(summary.Paths) == 0 {
		t.Error("bounded loop must still produce completed paths (small n)")
	}
	// Completed paths: n = 0, 1, 2, ... each with PC fixing the iteration
	// count; all distinct.
	seen := map[string]bool{}
	for _, p := range summary.Paths {
		if seen[p.PCString] {
			t.Errorf("duplicate loop path %q", p.PCString)
		}
		seen[p.PCString] = true
	}
}

func TestLoopPathConditions(t *testing.T) {
	src := `proc twice(int n) {
		i = 0;
		while (i < 2) {
			i = i + 1;
		}
		done = n;
	}`
	// Loop bound is concrete: exactly one path (condition folds to
	// constants, no solver involvement for the loop).
	e := newEngine(t, src, "twice", Config{})
	summary := e.RunFull()
	if len(summary.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(summary.Paths))
	}
	if summary.Paths[0].PCString != "true" {
		t.Errorf("PC = %q, want true", summary.Paths[0].PCString)
	}
}

func TestAssertViolationPaths(t *testing.T) {
	src := `proc checked(int x) {
		if (x > 10) {
			y = x - 10;
		} else {
			y = 10 - x;
		}
		assert y <= 10;
	}`
	e := newEngine(t, src, "checked", Config{})
	summary := e.RunFull()
	var errs, oks int
	for _, p := range summary.Paths {
		if p.Err {
			errs++
		} else {
			oks++
		}
	}
	// x > 20 violates (y = x-10 > 10); x in [0,10] gives y in [0,10] fine;
	// x in (10,20] fine. So: 2 ok paths + 1 error path... the x <= 10 arm
	// never violates over the non-negative domain (10 - x <= 10).
	if errs != 1 {
		t.Errorf("error paths = %d, want 1", errs)
	}
	if oks != 2 {
		t.Errorf("ok paths = %d, want 2", oks)
	}
	if got := len(summary.ErrorPaths()); got != errs {
		t.Errorf("ErrorPaths() = %d, want %d", got, errs)
	}
}

func TestConcreteGlobals(t *testing.T) {
	e := newEngine(t, testXSource, "testX", Config{ConcreteGlobals: true})
	summary := e.RunFull()
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(summary.Paths))
	}
	// Global y starts at its initializer 0, so final y is +X / -X.
	if got := summary.Paths[0].Env["y"].String(); got != "X" {
		t.Errorf("path 0 y = %q, want X", got)
	}
	if got := summary.Paths[1].Env["y"].String(); got != "-X" {
		t.Errorf("path 1 y = %q, want -X", got)
	}
	// Concrete globals are not symbolic inputs.
	if _, ok := e.Domains()["Y"]; ok {
		t.Error("concrete global must not have a solver domain")
	}
}

func TestBooleanParams(t *testing.T) {
	src := `proc gate(bool enable, int x) {
		if (enable) {
			y = x;
		} else {
			y = 0;
		}
	}`
	e := newEngine(t, src, "gate", Config{})
	summary := e.RunFull()
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(summary.Paths))
	}
	if d := e.Domains()["Enable"]; d != solver.BoolDomain {
		t.Errorf("bool param domain = %v, want %v", d, solver.BoolDomain)
	}
	if summary.Paths[0].PCString != "Enable" {
		t.Errorf("path 0 PC = %q, want Enable", summary.Paths[0].PCString)
	}
	if summary.Paths[1].PCString != "!Enable" {
		t.Errorf("path 1 PC = %q, want !Enable", summary.Paths[1].PCString)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newEngine(t, fig2Source, "update", Config{})
	summary := e.RunFull()
	st := summary.Stats
	if st.PathsExplored != len(summary.Paths) {
		t.Errorf("PathsExplored = %d, Paths = %d", st.PathsExplored, len(summary.Paths))
	}
	if st.StatesExplored <= len(summary.Paths) {
		t.Errorf("StatesExplored = %d, too small", st.StatesExplored)
	}
	if st.Solver.Checks == 0 {
		t.Error("solver must have been consulted")
	}
	if st.Time <= 0 {
		t.Error("time must be recorded")
	}
}

func TestMaxStatesSafetyValve(t *testing.T) {
	e := newEngine(t, fig2Source, "update", Config{MaxStates: 10})
	summary := e.RunFull()
	if !summary.Stats.MaxStatesHit {
		t.Error("MaxStates must trip")
	}
	if summary.Stats.StatesExplored > 20 {
		t.Errorf("states = %d, expected exploration to stop near the cap", summary.Stats.StatesExplored)
	}
}

func TestSymbolNaming(t *testing.T) {
	tests := map[string]string{
		"x": "X", "y": "Y", "PedalPos": "PedalPos", "bSwitch": "BSwitch", "": "",
	}
	for in, want := range tests {
		if got := SymbolName(in); got != want {
			t.Errorf("SymbolName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	prog, err := parser.Parse("proc p(int x) { y = x; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, "missing", Config{}); err == nil {
		t.Error("expected error for missing procedure")
	}
	bad, err := parser.Parse("proc p(int x) { if (x) { skip; } }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(bad, "p", Config{}); err == nil {
		t.Error("expected type error to propagate")
	}
}

func TestDeterministicExploration(t *testing.T) {
	run := func() []string {
		e := newEngine(t, fig2Source, "update", Config{})
		s := e.RunFull()
		return s.PathConditions()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different path counts across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic exploration at %d: %q vs %q", i, a[i], b[i])
		}
	}
	sorted := append([]string{}, a...)
	sort.Strings(sorted)
	// sanity: conditions mention the inputs
	if !strings.Contains(strings.Join(a, " "), "PedalPos") {
		t.Error("path conditions should mention PedalPos")
	}
}
