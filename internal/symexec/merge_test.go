package symexec

import (
	"testing"

	"dise/internal/lang/ast"
	"dise/internal/lang/parser"
	"dise/internal/memo"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

// mergeChainSource is a chain of four independent diamonds: 16 paths under
// plain exploration, 2 under unbounded merging (the final diamond's arms
// reach the end node, which never merges).
const mergeChainSource = `
int y = 0;
proc chain(int x1, int x2, int x3, int x4) {
  if (x1 > 0) { y = y + 1; } else { y = y - 1; }
  if (x2 > 0) { y = y + 2; } else { y = y - 2; }
  if (x3 > 0) { y = y + 3; } else { y = y - 3; }
  if (x4 > 0) { y = y + 4; } else { y = y - 4; }
}
`

// mergeAssertSource routes merged ite environments into an assertion, so the
// error path's feasibility is decided over nested ite constraints.
const mergeAssertSource = `
int r = 0;
proc guard(int a, int b) {
  if (a > 0) { r = a; } else { r = 0 - a; }
  if (b > 0) { r = r + b; } else { r = r - b; }
  assert r > 0;
}
`

// coveredSet is the union of Trace ∪ Cover over all paths: the node coverage
// a run achieved, however its states were fused.
func coveredSet(paths []Path) map[int]bool {
	m := map[int]bool{}
	for _, p := range paths {
		for _, id := range p.Trace {
			m[id] = true
		}
		for _, id := range p.Cover {
			m[id] = true
		}
	}
	return m
}

func sameCoverage(t *testing.T, full, merged *Summary) {
	t.Helper()
	want, got := coveredSet(full.Paths), coveredSet(merged.Paths)
	for id := range want {
		if !got[id] {
			t.Errorf("merged run lost coverage of node %d", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("merged run covers node %d the full run never reached", id)
		}
	}
}

func TestMergeDiamondChainCollapse(t *testing.T) {
	full := newEngine(t, mergeChainSource, "chain", Config{}).RunFull()
	merged := newEngine(t, mergeChainSource, "chain", Config{MergeBound: MergeUnbounded}).RunFull()

	if len(full.Paths) != 16 {
		t.Fatalf("full paths = %d, want 16", len(full.Paths))
	}
	if len(merged.Paths) != 2 {
		t.Fatalf("merged paths = %d, want 2", len(merged.Paths))
	}
	if merged.Stats.Merges != 3 {
		t.Errorf("merges = %d, want 3 (one per interior join)", merged.Stats.Merges)
	}
	if merged.Stats.MergedStatesSaved != 3 {
		t.Errorf("merged states saved = %d, want 3", merged.Stats.MergedStatesSaved)
	}
	if merged.Stats.IteNodes == 0 {
		t.Errorf("ite nodes = 0, want > 0 (env fusion builds ite trees)")
	}
	if 3*merged.Stats.StatesExplored > full.Stats.StatesExplored {
		t.Errorf("states explored: merged %d vs full %d, want >= 3x reduction on the diamond chain",
			merged.Stats.StatesExplored, full.Stats.StatesExplored)
	}
	sameCoverage(t, full, merged)

	// Complete sibling sets cancel: the interior joins append no disjunct,
	// so the merged paths' conditions are the final diamond's constraint
	// alone.
	if got := merged.Paths[0].PCString; got != "X4 > 0" {
		t.Errorf("merged path 0 PC = %q, want X4 > 0", got)
	}
	if got := merged.Paths[1].PCString; got != "X4 <= 0" {
		t.Errorf("merged path 1 PC = %q, want X4 <= 0", got)
	}
}

func TestMergeBoundChunking(t *testing.T) {
	// Bound 2 on the same chain: batches of two still merge whole.
	merged := newEngine(t, mergeChainSource, "chain", Config{MergeBound: 2}).RunFull()
	if len(merged.Paths) != 2 {
		t.Fatalf("merged paths = %d, want 2", len(merged.Paths))
	}
	if merged.Stats.Merges != 3 {
		t.Errorf("merges = %d, want 3", merged.Stats.Merges)
	}
}

func TestMergeBudgetStopsMerging(t *testing.T) {
	merged := newEngine(t, mergeChainSource, "chain", Config{MergeBound: MergeUnbounded, MergeBudget: 1}).RunFull()
	if merged.Stats.Merges != 1 {
		t.Errorf("merges = %d, want exactly the budget of 1", merged.Stats.Merges)
	}
	full := newEngine(t, mergeChainSource, "chain", Config{}).RunFull()
	sameCoverage(t, full, merged)
}

func TestMergeErrorPathEquivalence(t *testing.T) {
	full := newEngine(t, mergeAssertSource, "guard", Config{}).RunFull()
	merged := newEngine(t, mergeAssertSource, "guard", Config{MergeBound: MergeUnbounded}).RunFull()

	wantErr := len(full.ErrorPaths())
	gotErr := len(merged.ErrorPaths())
	if wantErr == 0 {
		t.Fatalf("test setup: full run found no error path (a = 0, b = 0 violates r > 0)")
	}
	if gotErr == 0 {
		t.Fatalf("merged run lost the error path: the ite-fused assert constraint was not decided feasible")
	}
	sameCoverage(t, full, merged)

	// Every merged path condition must remain solvable (test generation
	// feasibility), including those carrying ite and disjunction conjuncts.
	e := newEngine(t, mergeAssertSource, "guard", Config{})
	for i, p := range merged.Paths {
		res := e.CheckPC(p.PC)
		if !res.Sat || res.Unknown {
			t.Errorf("merged path %d PC %q not solvable (sat=%v unknown=%v)", i, p.PCString, res.Sat, res.Unknown)
		}
	}
}

func TestMergeMultiWayJoin(t *testing.T) {
	// fig2's 3-arm branches: a 3-way join merges whole at MergeUnbounded and
	// in a 2+1 split at bound 2; coverage matches the plain run either way.
	full := newEngine(t, fig2Source, "update", Config{}).RunFull()
	for _, bound := range []int{MergeUnbounded, 2, 8} {
		merged := newEngine(t, fig2Source, "update", Config{MergeBound: bound}).RunFull()
		if len(merged.Paths) >= len(full.Paths) {
			t.Errorf("bound %d: merged paths = %d, want fewer than full's %d", bound, len(merged.Paths), len(full.Paths))
		}
		if merged.Stats.Merges == 0 {
			t.Errorf("bound %d: no merges performed", bound)
		}
		sameCoverage(t, full, merged)
	}
}

func TestMergeConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		config Config
	}{
		{"bound 1", Config{MergeBound: 1}},
		{"bound below unbounded", Config{MergeBound: -2}},
		{"negative budget", Config{MergeBound: 2, MergeBudget: -1}},
		{"memo incompatible", Config{MergeBound: 2, Memo: &memo.Tree{}}},
	} {
		if _, err := New(mustParse(t, mergeChainSource), "chain", tc.config); err == nil {
			t.Errorf("%s: New accepted config %+v, want error", tc.name, tc.config)
		}
	}
	// The boundary values stay valid.
	for _, bound := range []int{0, MergeUnbounded, 2} {
		if _, err := New(mustParse(t, mergeChainSource), "chain", Config{MergeBound: bound}); err != nil {
			t.Errorf("bound %d: New rejected valid config: %v", bound, err)
		}
	}
}
