package symexec

// This file implements bounded state merging (Config.MergeBound): a
// veritesting-style exploration mode that fuses sibling states at CFG join
// points instead of exploring each of them separately, collapsing the
// exponential path explosion of diamond chains into a linear number of
// merged states.
//
// The scheduler is a reverse-postorder min-heap over pending states. Popping
// the heap minimum yields the pending state whose CFG node is earliest in
// reverse postorder; every other pending state sits at a node later in that
// order and can therefore only reach the minimum's node through a back edge.
// For forward control flow — the diamond chains that cause the explosion —
// this means all sibling states bound for a join have arrived by the time
// the join is popped, so the scheduler pops the whole batch at once and
// merges it. States arriving over back edges (loop iterations) simply form
// later, smaller batches: merging is opportunistic and its extent never
// affects correctness, only how much work is saved.
//
// Merging a group of siblings at a join:
//
//   - Their path conditions share a common prefix P (the shared tail of the
//     copy-on-write PathCond lists — found by pointer-walking, not by
//     comparing conjuncts). Each sibling i contributes a suffix conjunction
//     d_i, its branch decisions since the group diverged. The merged path
//     condition is P ∧ (d_1 ∨ … ∨ d_k); when the suffixes are a complement
//     pair (a bare diamond: d, ¬d) the disjunction is true and the merged
//     state continues under P alone.
//   - The merged environment maps each variable to the ite-fusion of the
//     siblings' values: ite(d_1, v_1, ite(d_2, v_2, … v_k)), built with the
//     sym.ITE smart constructor so equal arms collapse and constant-armed
//     chains stay in the solver's linear fragment. Because any two sibling
//     suffixes contain the complementary conjuncts of their divergence
//     branch, the guards are mutually exclusive by construction and the
//     fusion is exact, not an over-approximation.
//   - The merged state keeps the first sibling's trace as its ongoing
//     history and records every other constituent's coverage in
//     State.Cover, so affected-node accounting (internal/dise) still sees
//     everything any constituent executed.
//   - The first sibling's witness model still satisfies P ∧ d_1 and hence
//     the merged disjunction, so the parent-model fast path keeps working.
//
// A branch is feasible under the merged condition iff it is feasible for at
// least one constituent — Sat(P ∧ (∨ d_i) ∧ c) ⇔ ∃i Sat(P ∧ d_i ∧ c) — so a
// merged run covers exactly the branches the unmerged run covers; that is
// the verdict-equivalence guarantee the mode ships under (identical
// affected-branch coverage and per-branch test feasibility, not identical
// path sets).
//
// Merged exploration is sequential: one engine, one solver context. The
// merge queue replaces the strategy frontier, and a Pruner (DiSE's directed
// search) is driven from the same goroutine in heap order.

import (
	"container/heap"
	"sort"

	"dise/internal/cfg"
	"dise/internal/sym"
)

// mergeItem is one pending state in the merge queue.
type mergeItem struct {
	state *State
	rpo   int    // reverse-postorder index of state.Node
	seq   uint64 // insertion order, for deterministic ties
}

// mergeQueue is a binary min-heap over (rpo, seq).
type mergeQueue []*mergeItem

func (q mergeQueue) Len() int { return len(q) }
func (q mergeQueue) Less(i, j int) bool {
	if q[i].rpo != q[j].rpo {
		return q[i].rpo < q[j].rpo
	}
	return q[i].seq < q[j].seq
}
func (q mergeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *mergeQueue) Push(x any)   { *q = append(*q, x.(*mergeItem)) }
func (q *mergeQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// rpoIndex computes the reverse-postorder index of every node, by iterative
// DFS from the begin node. Every node is reachable from begin (the cfg
// package's construction invariant), so the map is total.
func rpoIndex(g *cfg.Graph) []int {
	idx := make([]int, len(g.Nodes))
	seen := make([]bool, len(g.Nodes))
	post := make([]int, 0, len(g.Nodes))
	type frame struct {
		n *cfg.Node
		i int
	}
	stack := []frame{{g.Begin, 0}}
	seen[g.Begin.ID] = true
	//diselint:ignore interruptloop bounded: each node enters the DFS stack at most once
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Succs) {
			// Visit successors in reverse so the first sibling (the true
			// branch) finishes last and lands earlier in reverse postorder —
			// the heap then drains true arms first, like the DFS frontier.
			to := f.n.Succs[len(f.n.Succs)-1-f.i].To
			f.i++
			if !seen[to.ID] {
				seen[to.ID] = true
				stack = append(stack, frame{n: to})
			}
			continue
		}
		post = append(post, f.n.ID)
		stack = stack[:len(stack)-1]
	}
	for i, id := range post {
		idx[id] = len(post) - 1 - i
	}
	return idx
}

// mergeableJoin reports whether states pending at n are candidates for
// merging: a statement node where control flow joins. Terminal nodes (end,
// error sink) never merge — path output stays per-state.
func mergeableJoin(n *cfg.Node) bool {
	switch n.Kind {
	case cfg.KindCond, cfg.KindWrite, cfg.KindNop:
		return len(n.Preds) >= 2
	}
	return false
}

// runMerged drains the merge queue on the caller's engine. It serves both
// driving modes: with a Pruner it applies the pruner's decisions (all hooks
// on this goroutine, like the committed walk); without one it collects
// terminal paths itself.
func (x *Explorer) runMerged() {
	e := x.engines[0]
	p := x.opts.Pruner
	iteBefore := sym.ITENodesBuilt()
	defer func() { x.iteNodes = int(sym.ITENodesBuilt() - iteBefore) }()

	rpo := rpoIndex(e.Graph)
	q := mergeQueue{}
	x.seq++
	heap.Push(&q, &mergeItem{state: x.root.state, rpo: rpo[x.root.state.Node.ID], seq: x.seq})

	//diselint:ignore interruptloop bounded: every pop either terminates a path or advances Depth toward the depth bound; Engine.Step polls Config.Interrupt
	for q.Len() > 0 {
		if p != nil && p.Stopped() {
			return
		}
		if x.overBudget() {
			return
		}
		// Pop the whole batch pending at the minimum's node.
		it := heap.Pop(&q).(*mergeItem)
		batch := []*State{it.state}
		//diselint:ignore interruptloop bounded: pops one queue entry per iteration
		for q.Len() > 0 && q[0].state.Node == it.state.Node {
			batch = append(batch, heap.Pop(&q).(*mergeItem).state)
		}
		states := batch
		if len(batch) >= 2 && mergeableJoin(it.state.Node) {
			states = x.mergeBatch(batch, e.config.MergeBound, e.config.MergeBudget)
		}
		for _, s := range states {
			x.expandMerged(s, e, rpo, &q)
			if x.interrupted() {
				return
			}
		}
	}
}

// expandMerged expands one state, pushing its feasible successors back into
// the merge queue (or handing them to the pruner first, in committed mode).
func (x *Explorer) expandMerged(s *State, e *Engine, rpo []int, q *mergeQueue) {
	p := x.opts.Pruner
	if p == nil && e.Terminal(s) {
		x.summary.Paths = append(x.summary.Paths, e.Collect(s))
		return
	}
	if p != nil && !p.Enter(s) {
		return
	}
	before := coreOf(e.stats)
	step := e.Step(s)
	delta := coreDelta(coreOf(e.stats), before)
	x.mu.Lock()
	x.coreStats.addCore(delta)
	x.created += len(step.Feasible)
	x.mu.Unlock()
	if e.interruptErr != nil {
		// Aborted mid-step: the empty successor list does not mean the path
		// is maximal, so the pruner must not collect it.
		x.fail(e.interruptErr)
		return
	}
	if p != nil {
		p.Expanded(s, step)
		explored := false
		for _, c := range step.Feasible {
			switch p.Child(c) {
			case ChildDescend:
				explored = true
				x.pushMerge(q, rpo, c)
			case ChildEmit:
				explored = true
			}
		}
		if !explored {
			p.Maximal(s)
		}
		return
	}
	for _, c := range step.Feasible {
		x.pushMerge(q, rpo, c)
	}
}

func (x *Explorer) pushMerge(q *mergeQueue, rpo []int, s *State) {
	x.seq++
	heap.Push(q, &mergeItem{state: s, rpo: rpo[s.Node.ID], seq: x.seq})
}

// mergeBatch partitions a batch of sibling states pending at one join into
// mergeable groups, chunks each group by the merge bound, and fuses every
// chunk of two or more into a single state. Singletons (and everything once
// the merge budget is spent) pass through unchanged.
func (x *Explorer) mergeBatch(batch []*State, bound, budget int) []*State {
	// Group by mergeability: identical environment name-sets (value bindings
	// may differ — that is what the ite fuses) and identical error flags.
	// Batch order — (rpo, seq) pop order — is preserved within groups, so
	// the output is deterministic.
	type group struct {
		key    string
		states []*State
	}
	var groups []*group
	byKey := map[string]*group{}
	for _, s := range batch {
		key := envShapeKey(s)
		g := byKey[key]
		if g == nil {
			g = &group{key: key}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.states = append(g.states, s)
	}
	out := make([]*State, 0, len(batch))
	for _, g := range groups {
		states := g.states
		//diselint:ignore interruptloop bounded: consumes at least one state per iteration
		for len(states) > 0 {
			if budget > 0 && x.merges >= budget {
				out = append(out, states...)
				break
			}
			chunk := states
			if bound >= 2 && len(chunk) > bound {
				chunk = chunk[:bound]
			}
			states = states[len(chunk):]
			if len(chunk) < 2 {
				out = append(out, chunk...)
				continue
			}
			out = append(out, x.mergeStates(chunk))
		}
	}
	return out
}

// envShapeKey digests the parts of a state that must agree for merging: the
// environment's name-set and the error flag.
func envShapeKey(s *State) string {
	n := 0
	s.Env.Each(func(name string, _ sym.Expr) { n += len(name) + 1 })
	b := make([]byte, 0, n+1)
	if s.Err {
		b = append(b, '!')
	}
	s.Env.Each(func(name string, _ sym.Expr) {
		b = append(b, name...)
		b = append(b, 0)
	})
	return string(b)
}

// mergeStates fuses a group of two or more sibling states at one node into
// a single state, per the scheme in the file comment.
func (x *Explorer) mergeStates(group []*State) *State {
	prefix := commonPC(group)
	suffixes := make([][]sym.Expr, len(group))
	deltas := make([]sym.Expr, len(group))
	for i, s := range group {
		suffixes[i] = suffixConjuncts(s.PC, prefix)
		deltas[i] = conjoin(suffixes[i])
	}

	// Merged path condition: prefix ∧ (d_1 ∨ … ∨ d_k), with the disjunction
	// factored along the suffixes' divergence structure so complementary
	// branch pairs cancel — a bare diamond (d, ¬d), and more generally any
	// join whose siblings cover every outcome of their divergence branches,
	// appends nothing.
	or := orOfSuffixes(suffixes)
	pc := prefix
	if bc, ok := or.(*sym.BoolConst); !ok || !bc.V {
		pc = pc.Append(or)
	}

	// Merged environment: ite-fuse differing bindings, guarded by the path
	// suffixes. The groups share one name-set (envShapeKey), so the sorted
	// entry slices align index by index.
	rep := group[0]
	entries := make([]envEntry, rep.Env.Len())
	for i := range rep.Env.entries {
		acc := group[len(group)-1].Env.entries[i].val
		for j := len(group) - 2; j >= 0; j-- {
			acc = sym.ITE(deltas[j], group[j].Env.entries[i].val, acc)
		}
		entries[i] = envEntry{name: rep.Env.entries[i].name, val: acc}
	}
	env := Env{entries: entries}

	// Coverage: the merged state's Trace continues the representative's
	// history; Cover retains every constituent's footprint for affected-node
	// accounting.
	cover := map[int]bool{}
	for _, s := range group {
		for _, id := range s.Trace {
			cover[id] = true
		}
		for _, id := range s.Cover {
			cover[id] = true
		}
	}
	coverIDs := make([]int, 0, len(cover))
	for id := range cover {
		coverIDs = append(coverIDs, id)
	}
	sort.Ints(coverIDs)

	depth := rep.Depth
	for _, s := range group[1:] {
		if s.Depth > depth {
			depth = s.Depth
		}
	}

	x.mu.Lock()
	x.merges++
	x.mergedSaved += len(group) - 1
	x.mu.Unlock()

	return &State{
		Node:  rep.Node,
		Env:   env,
		PC:    pc,
		Depth: depth,
		Trace: rep.Trace,
		Cover: coverIDs,
		Err:   rep.Err,
		model: rep.model, // satisfies prefix ∧ d_1, hence the disjunction
	}
}

// commonPC returns the longest shared tail of the group's path conditions —
// pointer-walked, so it is the exact PathCond cell chain the copy-on-write
// forks shared, not a structural comparison.
func commonPC(group []*State) *PathCond {
	p := group[0].PC
	for _, s := range group[1:] {
		p = commonTail(p, s.PC)
	}
	return p
}

func commonTail(a, b *PathCond) *PathCond {
	//diselint:ignore interruptloop bounded: shortens a by one cell per iteration
	for a.Len() > b.Len() {
		a = a.parent
	}
	//diselint:ignore interruptloop bounded: shortens b by one cell per iteration
	for b.Len() > a.Len() {
		b = b.parent
	}
	//diselint:ignore interruptloop bounded: both chains shorten in lockstep until nil
	for a != b {
		a = a.parent
		b = b.parent
	}
	return a
}

// suffixConjuncts lists the conjuncts of pc below the shared prefix, in
// path order. The suffix of any sibling in a merge group is non-empty (the
// group diverged at a branch, which appended a conjunct to every diverging
// arm), but an empty suffix degrades gracefully.
func suffixConjuncts(pc, prefix *PathCond) []sym.Expr {
	n := pc.Len() - prefix.Len()
	if n <= 0 {
		return nil
	}
	cs := make([]sym.Expr, n)
	//diselint:ignore interruptloop bounded: walks n cells of the suffix
	for c := pc; c != prefix; c = c.parent {
		n--
		cs[n] = c.c
	}
	return cs
}

// conjoin AndE-folds a conjunct list; empty folds to true.
func conjoin(cs []sym.Expr) sym.Expr {
	if len(cs) == 0 {
		return sym.True
	}
	out := cs[0]
	for _, c := range cs[1:] {
		out = sym.AndE(out, c)
	}
	return out
}

// orOfSuffixes factors the disjunction of the siblings' path suffixes along
// their divergence structure: suffixes are grouped by first conjunct, each
// group contributes first ∧ (disjunction of the rests), and when exactly two
// groups remain whose first conjuncts are complementary and whose rests both
// folded to true, the whole disjunction is true. Because the engine appends
// c to one arm and ¬c (interned, so pointer-comparable) to the other at
// every divergence, this cancels complete sibling sets — the dominant merge
// shape — to nothing instead of dragging tautological disjunctions into the
// solver.
func orOfSuffixes(suffixes [][]sym.Expr) sym.Expr {
	if len(suffixes) == 1 {
		return conjoin(suffixes[0])
	}
	for _, s := range suffixes {
		if len(s) == 0 {
			// A sibling with an empty suffix subsumes the whole group.
			return sym.True
		}
	}
	type group struct {
		first sym.Expr
		rests [][]sym.Expr
	}
	var groups []*group
	byFirst := map[sym.Expr]*group{}
	for _, s := range suffixes {
		g := byFirst[s[0]]
		if g == nil {
			g = &group{first: s[0]}
			byFirst[s[0]] = g
			groups = append(groups, g)
		}
		g.rests = append(g.rests, s[1:])
	}
	parts := make([]sym.Expr, len(groups))
	for i, g := range groups {
		parts[i] = sym.AndE(g.first, orOfSuffixes(g.rests))
	}
	if len(groups) == 2 && parts[0] == groups[0].first && parts[1] == groups[1].first &&
		(groups[1].first == sym.NotE(groups[0].first) || groups[0].first == sym.NotE(groups[1].first)) {
		return sym.True
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = sym.OrE(out, p)
	}
	return out
}
