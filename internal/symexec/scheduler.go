package symexec

// This file implements the exploration scheduler: a worklist of
// self-contained symbolic states drained under a pluggable Strategy
// (frontier.go), with optional parallel intra-query exploration and an
// optional Pruner steering which states are explored.
//
// Two driving modes share the frontier, the worker pool and the per-worker
// engine forks:
//
//   - Free exploration (Pruner == nil, full symbolic execution): workers
//     drain the frontier in strategy order, expanding states and collecting
//     terminal paths. Branch feasibility is path-local, so every strategy and
//     every parallelism level yields the same path set; under parallelism the
//     summary is assembled in canonical execution-tree preorder so the output
//     is deterministic (and equal to the depth-first order) regardless of
//     worker interleaving.
//
//   - Committed exploration (Pruner != nil, DiSE's directed search): the
//     pruning decisions of DiSE (explored/unexplored affected sets with
//     resets) are inherently sequential — which path represents an affected
//     sequence depends on the order decisions are made, and the paper's
//     Theorem 3.10 guarantee is stated over depth-first order. The scheduler
//     therefore commits pruner decisions in canonical depth-first tree order
//     on the caller's goroutine, while the worker pool speculatively expands
//     frontier states (in strategy order) ahead of the committed walk. The
//     expensive work — Engine.Step and its constraint solving — parallelizes;
//     the decisions, and hence the output, are byte-identical to the
//     sequential search at every strategy and parallelism level. Subtrees the
//     committed walk prunes are cancelled so speculation stops chasing them.
//
// Workers never share mutable solver state: each owns an Engine fork with a
// private constraint.Backend assertion stack (the syncStack PC-diff
// tolerates expanding states in any order), and all forks share one
// constraint.PrefixCache so prefixes solved by one worker are reused by the
// others.

import (
	"sync"
	"sync/atomic"

	"dise/internal/constraint"
)

// ChildVerdict is a Pruner's decision about one feasible successor state.
type ChildVerdict int

const (
	// ChildPrune drops the successor and its whole subtree.
	ChildPrune ChildVerdict = iota
	// ChildDescend explores the successor.
	ChildDescend
	// ChildEmit counts the successor as explored without descending into
	// it — the pruner has consumed it itself (DiSE emits error-sink
	// successors as paths directly).
	ChildEmit
)

// Pruner observes and steers a committed exploration. All methods are
// invoked from the committed walk's goroutine, in canonical depth-first tree
// order, regardless of the scheduler's strategy or parallelism — a pruner
// therefore needs no internal locking for these calls. (A strategy score
// function reading the same state is the one exception; see
// ExploreOptions.Score.)
type Pruner interface {
	// Enter is called when the committed walk reaches s, before expansion.
	// Returning false stops the walk at s — the pruner has either dropped
	// the state or consumed it as a path itself.
	Enter(s *State) bool
	// Expanded is called with s's expansion result, before the successors
	// are filtered.
	Expanded(s *State, step Step)
	// Child decides the fate of one feasible successor, in execution order.
	Child(c *State) ChildVerdict
	// Maximal is called when no successor of s was explored (every one
	// pruned, or none feasible): s terminates a maximal explored path.
	Maximal(s *State)
	// Stopped reports that the search should halt (streaming early stop).
	Stopped() bool
}

// ExploreOptions configures an Explorer beyond what the engine's Config
// (Strategy, ExploreParallelism, MaxStates, Interrupt) already fixes.
type ExploreOptions struct {
	// Pruner, when non-nil, selects committed exploration with the pruner's
	// decisions applied in canonical depth-first order.
	Pruner Pruner
	// Score maps a state to its priority under a scoring strategy (lower is
	// more urgent). Under parallel exploration it is called from worker
	// goroutines and must be safe for concurrent use with the Pruner's
	// (single-goroutine) mutations. When nil, the directed strategy falls
	// back to the CFG hop distance to the procedure's end node — a
	// shortest-path-first order for full symbolic execution.
	Score func(*State) int
}

// task is one node of the exploration task tree.
type task struct {
	state *State
	// status is the speculation claim protocol: taskNew -> taskClaimed (one
	// expander wins the CAS) -> taskDone (result fields published).
	status int32
	// dead marks a task whose subtree the committed walk pruned; workers
	// skip dead tasks instead of expanding them.
	dead int32

	// Result fields, written by the claiming expander and published with
	// status = taskDone (under the Explorer mutex).
	step     Step
	delta    Stats // engine core-counter delta attributable to this expansion
	aborted  bool  // expansion was interrupted mid-step; step is not trustworthy
	children []*task
	path     *Path // free exploration: the collected path of a terminal task
}

const (
	taskNew int32 = iota
	taskClaimed
	taskDone
)

// Explorer drains an exploration frontier over one engine (and, under
// parallelism, its forks). Construct with NewExplorer, call Run once.
type Explorer struct {
	opts        ExploreOptions
	parallelism int
	engines     []*Engine // engines[0] is the caller's engine
	root        *task

	mu           sync.Mutex
	cond         *sync.Cond
	frontier     Frontier
	seq          uint64
	active       int // free mode: tasks popped but not yet fully processed
	stopped      bool
	intErr       error
	created      int // states created: initial state + feasible successors
	maxStatesHit bool
	coreStats    Stats // committed core counters (see coreDelta)

	// State-merging counters (merge.go); zero without Config.MergeBound.
	merges      int
	mergedSaved int
	iteNodes    int

	summary *Summary
}

// NewExplorer prepares an exploration of e's procedure. The engine's Config
// fixes the strategy name and parallelism; both were validated when the
// engine was built. Under parallelism n, n-1 engine forks are created, each
// with its own constraint-backend assertion stack, all sharing e's prefix
// cache.
func NewExplorer(e *Engine, opts ExploreOptions) *Explorer {
	strat, err := strategyFor(e.config.Strategy)
	if err != nil {
		// Config.Strategy is validated in build(); reaching this means the
		// engine was constructed without New/NewPrepared.
		panic(err)
	}
	x := &Explorer{
		opts:        opts,
		parallelism: e.config.ResolvedExploreParallelism(),
		engines:     []*Engine{e},
	}
	if opts.Score == nil {
		end := e.Graph.End.ID
		x.opts.Score = func(s *State) int {
			if d := e.Graph.Dist(s.Node.ID, end); d >= 0 {
				return d
			}
			return int(^uint(0) >> 1)
		}
	}
	if e.config.Strategy == StrategyDirected {
		// Force the hop-distance analysis on this goroutine: worker
		// goroutines score states concurrently and must only read it.
		e.Graph.Dist(e.Graph.Begin.ID, e.Graph.End.ID)
	}
	if e.config.MergeBound != 0 {
		// Merged exploration is sequential: the merge queue replaces the
		// strategy frontier, and one engine threads one solver context
		// through the heap-ordered walk (merge.go).
		x.parallelism = 1
	}
	for i := 1; i < x.parallelism; i++ {
		fork, err := e.Fork()
		if err != nil {
			// Fork re-runs the backend construction that already succeeded
			// for e, with identical options; it cannot fail for a validated
			// config.
			panic(err)
		}
		x.engines = append(x.engines, fork)
	}
	x.cond = sync.NewCond(&x.mu)
	x.frontier = strat(x.opts.Score)
	return x
}

// Run performs the exploration and returns its summary. In committed mode
// the pruner emits paths itself, so only Summary.Stats is meaningful.
// Run must be called exactly once. Stats.Time is left to the caller.
func (x *Explorer) Run() *Summary {
	x.summary = &Summary{}
	primary := x.engines[0]
	before := coreOf(primary.stats)
	s0 := primary.InitialState()
	x.coreStats = coreDelta(coreOf(primary.stats), before)
	x.created = 1
	x.root = &task{state: s0}

	switch {
	case primary.config.MergeBound != 0:
		x.runMerged()
	case x.opts.Pruner != nil:
		x.runCommitted()
	default:
		x.runFree()
	}

	// Propagate an interrupt observed on any fork to the caller's engine so
	// existing InterruptErr call sites see it.
	if x.intErr != nil && primary.interruptErr == nil {
		primary.interruptErr = x.intErr
	}
	x.summary.Stats = x.mergedStats()
	return x.summary
}

// --- free exploration (full symbolic execution) ------------------------------

func (x *Explorer) runFree() {
	x.push(x.root)
	if x.parallelism == 1 {
		x.freeWorker(x.engines[0])
	} else {
		var wg sync.WaitGroup
		for _, e := range x.engines {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				x.freeWorker(e)
			}(e)
		}
		wg.Wait()
		// Deterministic output under parallelism: assemble the collected
		// paths in canonical tree preorder, which equals the depth-first
		// emission order whatever interleaving produced them.
		x.assemble(x.root)
	}
}

// freeWorker drains the frontier until it is empty and no task is in flight
// (or the exploration stopped early).
func (x *Explorer) freeWorker(e *Engine) {
	for {
		x.mu.Lock()
		for {
			if x.stopped {
				x.mu.Unlock()
				return
			}
			if x.frontier.Len() > 0 {
				break
			}
			if x.active == 0 {
				x.mu.Unlock()
				return
			}
			x.cond.Wait()
		}
		it, _ := x.frontier.Pop()
		x.active++
		x.mu.Unlock()

		x.processFree(it.task, e)

		x.mu.Lock()
		x.active--
		if x.active == 0 || x.stopped {
			x.cond.Broadcast()
		}
		x.mu.Unlock()
	}
}

// processFree handles one popped task: collect it if terminal, expand and
// enqueue its successors otherwise. Mirrors the recursive runFrom loop the
// scheduler replaces: the MaxStates valve is polled before every expansion,
// and an interrupt stops the run within one step.
func (x *Explorer) processFree(t *task, e *Engine) {
	if x.overBudget() {
		return
	}
	if e.Terminal(t.state) {
		p := e.Collect(t.state)
		if x.parallelism == 1 {
			// Sequential emission follows the strategy's pop order (for the
			// default DFS strategy: identical to the recursive exploration).
			x.summary.Paths = append(x.summary.Paths, p)
		} else {
			t.path = &p
			t.state = nil // assemble only needs the collected path
		}
		return
	}
	before := coreOf(e.stats)
	step := e.Step(t.state)
	delta := coreDelta(coreOf(e.stats), before)
	if e.interruptErr != nil {
		x.fail(e.interruptErr)
		return
	}
	kids := make([]*task, len(step.Feasible))
	items := make([]*Item, len(step.Feasible))
	x.mu.Lock()
	x.coreStats.addCore(delta)
	x.created += len(step.Feasible)
	for i, s := range step.Feasible {
		kids[i] = &task{state: s}
		x.seq++
		items[i] = &Item{State: s, Seq: x.seq, task: kids[i]}
	}
	if x.parallelism > 1 {
		t.children = kids // retained for the canonical assembly
		t.state = nil     // expanded; only the children matter now
	}
	x.frontier.Push(items...)
	x.cond.Broadcast()
	x.mu.Unlock()
}

// assemble appends the paths collected across the task tree in preorder.
func (x *Explorer) assemble(t *task) {
	if t.path != nil {
		x.summary.Paths = append(x.summary.Paths, *t.path)
	}
	for _, c := range t.children {
		x.assemble(c)
	}
}

// --- committed exploration (pruned / directed search) -------------------------

func (x *Explorer) runCommitted() {
	var wg sync.WaitGroup
	if x.parallelism > 1 {
		x.push(x.root)
		for _, e := range x.engines[1:] {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				x.specWorker(e)
			}(e)
		}
	}
	x.commit(x.root)
	x.mu.Lock()
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
	wg.Wait()
}

// commit is the committed walk: a depth-first traversal applying the
// pruner's decisions in canonical order, consuming expansion results that
// workers may have speculatively computed. It is a transliteration of the
// recursive directed search it replaces, so sequential runs are
// byte-identical — including the pruner's view of the exploration.
func (x *Explorer) commit(t *task) {
	p := x.opts.Pruner
	if p.Stopped() || x.interrupted() || x.overBudget() {
		return
	}
	if !p.Enter(t.state) {
		x.kill(t)
		return
	}
	step, ok := x.await(t)
	if !ok {
		// Expansion was aborted mid-step: the empty successor list does not
		// mean this path is maximal, so do not let the pruner collect it.
		return
	}
	p.Expanded(t.state, step)
	explored := false
	for _, c := range t.children {
		switch p.Child(c.state) {
		case ChildDescend:
			explored = true
			x.commit(c)
		case ChildEmit:
			explored = true
			x.kill(c)
		default:
			x.kill(c)
		}
	}
	if !explored {
		p.Maximal(t.state)
	}
	// The walk is past this subtree: release its states and expansion
	// results so peak memory tracks the committed frontier, not the whole
	// explored tree. Nobody can reach t anymore — its children were
	// committed or killed, workers skip done/dead tasks — but the children
	// array is nilled under the mutex because killLocked walks such arrays.
	x.mu.Lock()
	t.state = nil
	t.step = Step{}
	t.children = nil
	x.mu.Unlock()
}

// await returns t's expansion result, expanding inline on the caller's
// engine when no worker has claimed t, waiting for the worker otherwise.
func (x *Explorer) await(t *task) (Step, bool) {
	if atomic.CompareAndSwapInt32(&t.status, taskNew, taskClaimed) {
		x.expandTask(t, x.engines[0])
	} else {
		x.mu.Lock()
		for atomic.LoadInt32(&t.status) != taskDone {
			x.cond.Wait()
		}
		x.mu.Unlock()
	}
	x.mu.Lock()
	x.coreStats.addCore(t.delta) // only committed expansions count
	x.mu.Unlock()
	return t.step, !t.aborted
}

// specWorker speculatively expands frontier tasks, in strategy order, ahead
// of the committed walk. It exits when the walk finishes or the run stops.
func (x *Explorer) specWorker(e *Engine) {
	for {
		x.mu.Lock()
		var t *task
		for t == nil {
			if x.stopped {
				x.mu.Unlock()
				return
			}
			it, ok := x.frontier.Pop()
			if !ok {
				x.cond.Wait()
				continue
			}
			c := it.task
			if atomic.LoadInt32(&c.dead) == 1 {
				continue // pruned by the committed walk
			}
			if !atomic.CompareAndSwapInt32(&c.status, taskNew, taskClaimed) {
				continue // the walk claimed it inline
			}
			t = c
		}
		x.mu.Unlock()
		x.expandTask(t, e)
	}
}

// expandTask computes t's Step on engine e and publishes the result. In
// committed mode the successors also enter the frontier (unless t died in
// the meantime) so workers can keep speculating down the tree.
func (x *Explorer) expandTask(t *task, e *Engine) {
	before := coreOf(e.stats)
	step := e.Step(t.state)
	t.delta = coreDelta(coreOf(e.stats), before)
	t.step = step
	if e.interruptErr != nil {
		t.aborted = true
	}
	kids := make([]*task, len(step.Feasible))
	for i, s := range step.Feasible {
		kids[i] = &task{state: s}
	}

	x.mu.Lock()
	t.children = kids
	x.created += len(step.Feasible) // speculative states count toward MaxStates
	if t.aborted && x.intErr == nil {
		x.intErr = e.interruptErr
	}
	if atomic.LoadInt32(&t.dead) == 1 {
		// Pruned while expanding: the children die with it, unseen.
		for _, c := range kids {
			atomic.StoreInt32(&c.dead, 1)
		}
	} else if x.parallelism > 1 {
		items := make([]*Item, len(kids))
		for i, c := range kids {
			x.seq++
			items[i] = &Item{State: c.state, Seq: x.seq, task: c}
		}
		x.frontier.Push(items...)
	}
	atomic.StoreInt32(&t.status, taskDone)
	x.cond.Broadcast()
	x.mu.Unlock()
}

// kill marks t's subtree dead so speculation stops chasing it.
func (x *Explorer) kill(t *task) {
	x.mu.Lock()
	x.killLocked(t)
	x.mu.Unlock()
}

func (x *Explorer) killLocked(t *task) {
	atomic.StoreInt32(&t.dead, 1)
	for _, c := range t.children {
		x.killLocked(c)
	}
}

// --- shared plumbing ----------------------------------------------------------

// push enqueues a task as a frontier item.
func (x *Explorer) push(t *task) {
	x.mu.Lock()
	x.seq++
	x.frontier.Push(&Item{State: t.state, Seq: x.seq, task: t})
	x.cond.Broadcast()
	x.mu.Unlock()
}

// overBudget reports (and records) that the MaxStates safety valve tripped.
// Under parallel exploration speculative expansions count toward the valve:
// it bounds the work actually performed, whatever order performed it.
func (x *Explorer) overBudget() bool {
	max := x.engines[0].config.MaxStates
	if max <= 0 {
		return false
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.created >= max {
		x.maxStatesHit = true
		if !x.stopped {
			x.stopped = true
			x.cond.Broadcast()
		}
		return true
	}
	return false
}

func (x *Explorer) interrupted() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.intErr != nil
}

// fail records the first interrupt and stops the run.
func (x *Explorer) fail(err error) {
	x.mu.Lock()
	if x.intErr == nil {
		x.intErr = err
	}
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
}

// mergedStats joins the per-worker counters at the end of a run. The core
// exploration counters (states, branches, depth-bound hits, model hits) are
// the committed ones — deterministic for a given analysis at every strategy
// and parallelism level. The solver counters are summed across the worker
// backends; their split between cache hits, model reuses and full solves
// legitimately varies with speculation and interleaving.
func (x *Explorer) mergedStats() Stats {
	st := x.coreStats
	st.MaxStatesHit = x.maxStatesHit
	st.Merges = x.merges
	st.MergedStatesSaved = x.mergedSaved
	st.IteNodes = x.iteNodes
	var solver constraint.Stats
	for _, e := range x.engines {
		st.PathsExplored += e.stats.PathsExplored
		st.CheckPanics += e.stats.CheckPanics
		st.MemoHits += e.stats.MemoHits
		st.MemoStatesReplayed += e.stats.MemoStatesReplayed
		st.MemoStatesLive += e.stats.MemoStatesLive
		solver.Add(e.Backend.Stats())
	}
	st.Solver = solver
	return st
}

// coreOf projects the deterministic exploration counters of s.
func coreOf(s Stats) Stats {
	return Stats{
		StatesExplored:     s.StatesExplored,
		InfeasibleBranches: s.InfeasibleBranches,
		DepthBoundHits:     s.DepthBoundHits,
		ModelHits:          s.ModelHits,
	}
}

// coreDelta subtracts two core projections.
func coreDelta(after, before Stats) Stats {
	return Stats{
		StatesExplored:     after.StatesExplored - before.StatesExplored,
		InfeasibleBranches: after.InfeasibleBranches - before.InfeasibleBranches,
		DepthBoundHits:     after.DepthBoundHits - before.DepthBoundHits,
		ModelHits:          after.ModelHits - before.ModelHits,
	}
}

func (s *Stats) addCore(d Stats) {
	s.StatesExplored += d.StatesExplored
	s.InfeasibleBranches += d.InfeasibleBranches
	s.DepthBoundHits += d.DepthBoundHits
	s.ModelHits += d.ModelHits
}
