package symexec

// This file defines the Frontier/Strategy abstraction of the exploration
// scheduler: a frontier is the worklist of pending symbolic states, and a
// strategy decides in which order the scheduler drains it. State expansion
// (Engine.Step) is fully decoupled from that order — any frontier yields a
// correct exploration, because states are self-contained (node, environment,
// path condition) and the solver's assertion stack re-syncs to whatever
// state is expanded next (Engine.syncStack).

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// Built-in strategy names, accepted by Config.Strategy (and surfaced as the
// -strategy flag of cmd/dise and cmd/symexec).
const (
	// StrategyDFS drains the frontier last-in-first-out, reproducing the
	// classic depth-first exploration of the execution tree. It is the
	// default, and for directed (DiSE) analysis it is the order whose
	// pruning decisions the paper's Theorem 3.10 is stated over.
	StrategyDFS = "dfs"
	// StrategyBFS drains the frontier first-in-first-out, exploring the
	// execution tree level by level.
	StrategyBFS = "bfs"
	// StrategyDirected drains the frontier lowest-score-first, where the
	// score is a CFG hop distance to the nearest target node: for DiSE, the
	// distance to the nearest unexplored affected node; for full symbolic
	// execution, the distance to the procedure's end node.
	StrategyDirected = "directed"
)

// Item is one frontier entry: a pending state plus the scheduler bookkeeping
// a strategy may order by.
type Item struct {
	// State is the symbolic state awaiting expansion.
	State *State
	// Seq is a monotone insertion sequence number; strategies use it for
	// deterministic tie-breaking.
	Seq uint64
	// Score is the priority of the state under a scoring strategy (lower is
	// more urgent), frozen at push time.
	Score int

	task *task
}

// Frontier is a worklist of pending states. Push receives siblings in
// execution order (the true branch first); a depth-first frontier must pop
// them in that same order. Frontiers are not safe for concurrent use — the
// scheduler serializes access.
type Frontier interface {
	Push(items ...*Item)
	Pop() (*Item, bool)
	Len() int
}

// Strategy builds an empty frontier for one exploration. The score function
// maps a state to its priority (lower first) and is only consulted by
// scoring strategies; it may be nil for order-only strategies.
type Strategy func(score func(*State) int) Frontier

var (
	strategyMu  sync.RWMutex
	strategyReg = map[string]Strategy{
		StrategyDFS:      func(func(*State) int) Frontier { return &lifoFrontier{} },
		StrategyBFS:      func(func(*State) int) Frontier { return &fifoFrontier{} },
		StrategyDirected: newScoredFrontier,
	}
)

// RegisterStrategy makes a custom strategy available under the given name,
// e.g. to plug in a learned search heuristic. Registering a built-in name
// overrides it process-wide; intended for experiments, not for libraries.
func RegisterStrategy(name string, s Strategy) {
	strategyMu.Lock()
	defer strategyMu.Unlock()
	strategyReg[name] = s
}

// Strategies lists the registered strategy names, sorted, with the default
// ("dfs") first.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyReg))
	for name := range strategyReg {
		if name != StrategyDFS {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return append([]string{StrategyDFS}, names...)
}

// strategyFor resolves a strategy name; the empty name selects DFS.
func strategyFor(name string) (Strategy, error) {
	if name == "" {
		name = StrategyDFS
	}
	strategyMu.RLock()
	s, ok := strategyReg[name]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("symexec: unknown search strategy %q (have %v)", name, Strategies())
	}
	return s, nil
}

// lifoFrontier is the depth-first worklist: a stack. Sibling batches are
// pushed in reverse so the first sibling pops first, matching the preorder
// of the recursive exploration it replaces.
type lifoFrontier struct {
	stack []*Item
}

func (f *lifoFrontier) Push(items ...*Item) {
	for i := len(items) - 1; i >= 0; i-- {
		f.stack = append(f.stack, items[i])
	}
}

func (f *lifoFrontier) Pop() (*Item, bool) {
	if len(f.stack) == 0 {
		return nil, false
	}
	it := f.stack[len(f.stack)-1]
	f.stack[len(f.stack)-1] = nil
	f.stack = f.stack[:len(f.stack)-1]
	return it, true
}

func (f *lifoFrontier) Len() int { return len(f.stack) }

// fifoFrontier is the breadth-first worklist: a queue.
type fifoFrontier struct {
	queue []*Item
	head  int
}

func (f *fifoFrontier) Push(items ...*Item) { f.queue = append(f.queue, items...) }

func (f *fifoFrontier) Pop() (*Item, bool) {
	if f.head == len(f.queue) {
		return nil, false
	}
	it := f.queue[f.head]
	f.queue[f.head] = nil
	f.head++
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
	}
	return it, true
}

func (f *fifoFrontier) Len() int { return len(f.queue) - f.head }

// scoredFrontier is a binary min-heap over (Score, Seq): lowest score first,
// first-pushed first among equals, so the order is deterministic. Scores are
// frozen at push time — with a moving target set (DiSE's unexplored affected
// nodes) the order is a heuristic, not an invariant, which is all a search
// strategy needs to be.
type scoredFrontier struct {
	score func(*State) int
	heap  scoredHeap
}

func newScoredFrontier(score func(*State) int) Frontier {
	return &scoredFrontier{score: score}
}

func (f *scoredFrontier) Push(items ...*Item) {
	for _, it := range items {
		if f.score != nil {
			it.Score = f.score(it.State)
		}
		heap.Push(&f.heap, it)
	}
}

func (f *scoredFrontier) Pop() (*Item, bool) {
	if len(f.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&f.heap).(*Item), true
}

func (f *scoredFrontier) Len() int { return len(f.heap) }

type scoredHeap []*Item

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Seq < h[j].Seq
}
func (h scoredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)   { *h = append(*h, x.(*Item)) }
func (h *scoredHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
