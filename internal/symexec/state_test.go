package symexec

import (
	"testing"

	"dise/internal/sym"
)

// TestEnvCopyOnWrite pins the persistence contract of Env: Set never
// mutates the receiver, unrelated bindings are shared, and a no-op write
// (same interned expression) returns the identical environment.
func TestEnvCopyOnWrite(t *testing.T) {
	base := NewEnv(map[string]sym.Expr{
		"a": sym.V("A"),
		"b": sym.V("B"),
	})
	mod := base.Set("a", sym.Add(sym.V("A"), sym.One))
	if v, _ := base.Get("a"); v != sym.V("A") {
		t.Fatalf("Set mutated the receiver: base a = %s", v)
	}
	if v, _ := mod.Get("a"); v.String() != "A + 1" {
		t.Fatalf("mod a = %s, want A + 1", v)
	}
	if v, _ := mod.Get("b"); v != sym.V("B") {
		t.Fatalf("mod lost unrelated binding: b = %s", v)
	}
	// Inserting a new name grows by exactly one and keeps sorted order.
	grown := mod.Set("ab", sym.Zero)
	if grown.Len() != 3 || mod.Len() != 2 {
		t.Fatalf("lengths after insert: grown %d (want 3), mod %d (want 2)", grown.Len(), mod.Len())
	}
	var names []string
	grown.Each(func(name string, _ sym.Expr) { names = append(names, name) })
	if names[0] != "a" || names[1] != "ab" || names[2] != "b" {
		t.Fatalf("iteration order = %v, want [a ab b]", names)
	}
	// No-op write: binding the same canonical node shares the whole Env.
	same := mod.Set("a", sym.Add(sym.V("A"), sym.One))
	if len(same.entries) != len(mod.entries) || &same.entries[0] != &mod.entries[0] {
		t.Fatalf("no-op write did not share the environment")
	}
	if _, ok := base.Get("missing"); ok {
		t.Fatalf("Get of absent name reported present")
	}
}

// TestPathCondSharedTail pins the path-condition list: appends share the
// tail, materialization restores root-first order, and AppendTo reuses a
// big-enough buffer without allocating.
func TestPathCondSharedTail(t *testing.T) {
	c1 := sym.Cmp(sym.OpGT, sym.V("X"), sym.Zero)
	c2 := sym.Cmp(sym.OpLT, sym.V("Y"), sym.Int(10))
	c3 := sym.Cmp(sym.OpEQ, sym.V("Z"), sym.One)

	var root *PathCond
	p1 := root.Append(c1)
	p2 := p1.Append(c2)
	sibling := p1.Append(c3)

	if root.Len() != 0 || p1.Len() != 1 || p2.Len() != 2 || sibling.Len() != 2 {
		t.Fatalf("lengths = %d/%d/%d/%d", root.Len(), p1.Len(), p2.Len(), sibling.Len())
	}
	if got := p2.Slice(); len(got) != 2 || got[0] != c1 || got[1] != c2 {
		t.Fatalf("p2.Slice() = %v", got)
	}
	if got := sibling.Slice(); got[0] != c1 || got[1] != c3 {
		t.Fatalf("sibling.Slice() = %v", got)
	}
	if root.Slice() != nil {
		t.Fatalf("empty PC materialized non-nil")
	}
	// Buffer reuse: a second AppendTo into the same backing array must not
	// grow it.
	buf := make([]sym.Expr, 0, 8)
	out := p2.AppendTo(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatalf("AppendTo did not reuse the provided buffer")
	}
	out2 := sibling.AppendTo(out[:0])
	if &out2[0] != &out[0] || out2[1] != c3 {
		t.Fatalf("AppendTo reuse produced %v", out2)
	}
}

// TestForkSharesUntilWrite pins the copy-on-write fork: successor states
// share the parent's environment backing and trace slice until a write or a
// statement append replaces them, and sibling branch states never see each
// other's extensions.
func TestForkSharesUntilWrite(t *testing.T) {
	src := `proc p(int x) {
		if (x > 0) {
			y = 1;
		} else {
			y = 2;
		}
	}`
	e := newEngine(t, src, "p", Config{})
	s := e.InitialState()
	cond := e.Successors(s)[0] // begin -> cond
	kids := e.Successors(cond) // the two branch arms
	if len(kids) != 2 {
		t.Fatalf("feasible branches = %d, want 2", len(kids))
	}
	tr, fl := kids[0], kids[1]
	if tr.PC.Len() != 1 || fl.PC.Len() != 1 {
		t.Fatalf("branch PC lengths = %d/%d, want 1/1", tr.PC.Len(), fl.PC.Len())
	}
	if tr.PC.Slice()[0] == fl.PC.Slice()[0] {
		t.Fatalf("sibling branches share the same branch constraint")
	}
	// Both writes proceed; each sibling sees only its own assignment.
	wt := e.Successors(tr)[0]
	wf := e.Successors(fl)[0]
	vt, _ := wt.Env.Get("y")
	vf, _ := wf.Env.Get("y")
	if vt != sym.One || vf != sym.Int(2) {
		t.Fatalf("y after writes = %s / %s, want 1 / 2", vt, vf)
	}
	if _, ok := tr.Env.Get("y"); ok {
		t.Fatalf("write leaked into the parent state's environment")
	}
}
