// Package symexec implements symbolic execution of mini-language procedures
// over their control flow graphs.
//
// It provides the stepping primitives (a State carries the current CFG node,
// a symbolic environment mapping program variables to symbolic expressions,
// and a path condition; Step forks a state at conditional branches,
// consulting the constraint solver to prune infeasible branches exactly as
// described in §2.1 of the paper), an exploration scheduler that drains a
// worklist of states under a pluggable search strategy with optional
// intra-query parallelism (scheduler.go, frontier.go), and on top of those
// the full ("traditional") symbolic execution used as the control in the
// paper's evaluation (§4.2.2). The directed search of DiSE plugs into the
// same scheduler as a Pruner (see internal/dise).
package symexec

import (
	"fmt"
	"sort"
	"strings"

	"dise/internal/cfg"
	"dise/internal/memo"
	"dise/internal/sym"
)

// State is a symbolic program state: a program location (CFG node), symbolic
// expressions for the program variables, and a path condition (paper §2.1).
type State struct {
	// Node is the next CFG node to execute.
	Node *cfg.Node
	// Env maps every program variable to its current symbolic expression.
	Env map[string]sym.Expr
	// PC is the path condition: the conjunction of branch constraints
	// accumulated along the path to this state.
	PC []sym.Expr
	// Depth is the number of CFG nodes executed before reaching this state.
	Depth int
	// Trace is the sequence of statement-node IDs executed so far. Traces
	// power the affected-node-sequence analysis and the Table 1 rendering.
	Trace []int
	// Err marks a state that reached the assertion-failure sink.
	Err bool
	// model is a satisfying assignment witnessing PC's feasibility. When a
	// branch constraint is already satisfied by the parent's model, the
	// child inherits it and no solver call is needed — the dominant case,
	// since exactly one branch outcome agrees with any given model.
	model map[string]int64
	// memo is the state's node in the session's execution-tree trie
	// (internal/memo), assigned by the parent's expansion; nil when the
	// engine runs without a memo (Config.Memo).
	memo *memo.Node
}

// MarkMemoPruned records on the state's memo-trie node, if any, that the
// pruner cut this state. Pruning decisions are change-dependent and
// order-sensitive, so they are recorded for observability only — the next
// version's search always re-decides them live (see internal/memo).
func (s *State) MarkMemoPruned() {
	if s.memo != nil {
		s.memo.Pruned = true
	}
}

// fork returns a copy of s with fresh Env/PC/Trace backing so that sibling
// branches do not interfere.
func (s *State) fork(node *cfg.Node) *State {
	env := make(map[string]sym.Expr, len(s.Env))
	for k, v := range s.Env {
		env[k] = v
	}
	pc := make([]sym.Expr, len(s.PC), len(s.PC)+1)
	copy(pc, s.PC)
	trace := make([]int, len(s.Trace), len(s.Trace)+1)
	copy(trace, s.Trace)
	return &State{
		Node:  node,
		Env:   env,
		PC:    pc,
		Depth: s.Depth + 1,
		Trace: trace,
		Err:   s.Err,
		model: s.model,
	}
}

// EnvString renders the environment deterministically: "x: X, y: Y + X".
func (s *State) EnvString() string {
	names := make([]string, 0, len(s.Env))
	for n := range s.Env {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s: %s", n, s.Env[n])
	}
	return strings.Join(parts, ", ")
}

// PCString renders the path condition like the paper: "PC: true" when empty.
func (s *State) PCString() string { return sym.Conjoin(s.PC) }

// String renders "Loc: n3 | x: X | PC: X > 0".
func (s *State) String() string {
	return fmt.Sprintf("Loc: n%d | %s | PC: %s", s.Node.ID, s.EnvString(), s.PCString())
}

// Path is one complete execution path produced by symbolic execution.
type Path struct {
	// PC is the full path condition of the path.
	PC []sym.Expr
	// PCString is the canonical rendering of PC (used for comparing path
	// conditions across techniques and versions).
	PCString string
	// Env is the final symbolic environment (the symbolic summary of the
	// path's effect).
	Env map[string]sym.Expr
	// Trace is the sequence of statement CFG node IDs executed.
	Trace []int
	// Err reports that the path ended in an assertion violation.
	Err bool
}

// Summary is the result of a symbolic execution run: the set of path
// conditions plus cost counters, i.e. the "symbolic summary" of §2.1.
type Summary struct {
	Paths []Path
	Stats Stats
}

// PathConditions returns the rendered path conditions in exploration order.
func (s *Summary) PathConditions() []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p.PCString
	}
	return out
}

// ErrorPaths returns only the paths that ended in assertion violations.
func (s *Summary) ErrorPaths() []Path {
	var out []Path
	for _, p := range s.Paths {
		if p.Err {
			out = append(out, p)
		}
	}
	return out
}
