// Package symexec implements symbolic execution of mini-language procedures
// over their control flow graphs.
//
// It provides the stepping primitives (a State carries the current CFG node,
// a symbolic environment mapping program variables to symbolic expressions,
// and a path condition; Step forks a state at conditional branches,
// consulting the constraint solver to prune infeasible branches exactly as
// described in §2.1 of the paper), an exploration scheduler that drains a
// worklist of states under a pluggable search strategy with optional
// intra-query parallelism (scheduler.go, frontier.go), and on top of those
// the full ("traditional") symbolic execution used as the control in the
// paper's evaluation (§4.2.2). The directed search of DiSE plugs into the
// same scheduler as a Pruner (see internal/dise).
//
// States are copy-on-write: forking a state at a branch shares the parent's
// environment, path condition and trace outright — Env layers are immutable
// sorted slices replaced only on write, the path condition is a shared-tail
// list extended by one cell per branch and materialized only when a path is
// emitted — so the engine's inner loop allocates per *change*, not per fork.
package symexec

import (
	"sort"
	"strconv"
	"strings"

	"dise/internal/cfg"
	"dise/internal/memo"
	"dise/internal/sym"
)

// Env is a persistent symbolic environment: an immutable, name-sorted slice
// of variable bindings. The zero value is the empty environment. Set returns
// a new environment sharing nothing mutable with the receiver, so forked
// states share one Env value (a slice header copy) and pay for a write
// exactly when they write — one exact-size slice allocation — instead of
// deep-copying a map on every fork.
type Env struct {
	entries []envEntry // sorted by name; immutable once published
}

type envEntry struct {
	name string
	val  sym.Expr
}

// search returns the index of name, or the insertion point with found=false.
func (e Env) search(name string) (int, bool) {
	lo, hi := 0, len(e.entries)
	//diselint:ignore interruptloop bounded: binary search halves the window each iteration
	for lo < hi {
		mid := (lo + hi) / 2
		if e.entries[mid].name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(e.entries) && e.entries[lo].name == name
}

// Get returns the symbolic expression bound to name.
func (e Env) Get(name string) (sym.Expr, bool) {
	i, ok := e.search(name)
	if !ok {
		return nil, false
	}
	return e.entries[i].val, true
}

// Set returns a new environment with name bound to val. The receiver is
// unchanged; unrelated bindings are shared by value (the entries hold
// interned, immutable expressions).
func (e Env) Set(name string, val sym.Expr) Env {
	i, ok := e.search(name)
	if ok {
		if e.entries[i].val == val {
			return e // no-op write: share the whole environment
		}
		entries := make([]envEntry, len(e.entries))
		copy(entries, e.entries)
		entries[i].val = val
		return Env{entries: entries}
	}
	entries := make([]envEntry, len(e.entries)+1)
	copy(entries, e.entries[:i])
	entries[i] = envEntry{name: name, val: val}
	copy(entries[i+1:], e.entries[i:])
	return Env{entries: entries}
}

// Len returns the number of bindings.
func (e Env) Len() int { return len(e.entries) }

// Map materializes the environment as a map, for path emission and external
// consumers (Path.Env).
func (e Env) Map() map[string]sym.Expr {
	out := make(map[string]sym.Expr, len(e.entries))
	for _, ent := range e.entries {
		out[ent.name] = ent.val
	}
	return out
}

// Each calls fn for every binding in name order.
func (e Env) Each(fn func(name string, val sym.Expr)) {
	for _, ent := range e.entries {
		fn(ent.name, ent.val)
	}
}

// NewEnv builds an environment from a map (order-independent; entries are
// sorted).
func NewEnv(m map[string]sym.Expr) Env {
	entries := make([]envEntry, 0, len(m))
	for name, val := range m {
		entries = append(entries, envEntry{name: name, val: val})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return Env{entries: entries}
}

// PathCond is a persistent path condition: a singly linked list growing at
// the tail end, so sibling branches share their common prefix as one chain
// and appending a branch constraint is a single small allocation. nil is the
// empty ("true") path condition. The conjunct order (root first) is
// recovered by Slice/AppendTo when a path is emitted or the solver stack is
// synced.
type PathCond struct {
	parent *PathCond
	c      sym.Expr
	n      int // conjunct count including c
}

// Len returns the number of conjuncts.
func (p *PathCond) Len() int {
	if p == nil {
		return 0
	}
	return p.n
}

// Append returns the path condition extended by one conjunct. The receiver
// is shared, not copied.
func (p *PathCond) Append(c sym.Expr) *PathCond {
	return &PathCond{parent: p, c: c, n: p.Len() + 1}
}

// AppendTo materializes the conjuncts in path order (root first) into buf,
// reusing its backing array when it is large enough — the engine's stack
// sync runs on a scratch buffer and allocates nothing in steady state.
func (p *PathCond) AppendTo(buf []sym.Expr) []sym.Expr {
	n := p.Len()
	base := len(buf)
	if cap(buf) < base+n {
		grown := make([]sym.Expr, base, base+n)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:base+n]
	for q := p; q != nil; q = q.parent {
		n--
		buf[base+n] = q.c
	}
	return buf
}

// Slice materializes the conjuncts in path order as a fresh slice.
func (p *PathCond) Slice() []sym.Expr {
	if p == nil {
		return nil
	}
	return p.AppendTo(make([]sym.Expr, 0, p.n))
}

// State is a symbolic program state: a program location (CFG node), symbolic
// expressions for the program variables, and a path condition (paper §2.1).
type State struct {
	// Node is the next CFG node to execute.
	Node *cfg.Node
	// Env maps every program variable to its current symbolic expression.
	// It is copy-on-write: forked states share it until one of them writes.
	Env Env
	// PC is the path condition: the conjunction of branch constraints
	// accumulated along the path to this state, as a prefix-sharing list.
	PC *PathCond
	// Depth is the number of CFG nodes executed before reaching this state.
	Depth int
	// Trace is the sequence of statement-node IDs executed so far. Traces
	// power the affected-node-sequence analysis and the Table 1 rendering.
	// Forked states share the parent's slice; appends copy (exact size).
	Trace []int
	// Cover is the set of statement-node IDs (sorted, deduplicated) covered
	// by sibling states this state absorbed through merging (merge.go):
	// Trace continues the representative sibling's history, Cover keeps the
	// others' so coverage accounting (DiSE's affected-node bookkeeping)
	// still sees every node any constituent executed. Nil outside merged
	// runs. Forked states share the slice; merges build fresh ones.
	Cover []int
	// Err marks a state that reached the assertion-failure sink.
	Err bool
	// model is a satisfying assignment witnessing PC's feasibility. When a
	// branch constraint is already satisfied by the parent's model, the
	// child inherits it and no solver call is needed — the dominant case,
	// since exactly one branch outcome agrees with any given model.
	model map[string]int64
	// memo is the state's node in the session's execution-tree trie
	// (internal/memo), assigned by the parent's expansion; nil when the
	// engine runs without a memo (Config.Memo).
	memo *memo.Node
}

// MarkMemoPruned records on the state's memo-trie node, if any, that the
// pruner cut this state. Pruning decisions are change-dependent and
// order-sensitive, so they are recorded for observability only — the next
// version's search always re-decides them live (see internal/memo).
func (s *State) MarkMemoPruned() {
	if s.memo != nil {
		s.memo.Pruned = true
	}
}

// fork returns a successor of s at node. Everything is shared with the
// parent: Env and PC are copy-on-write (the caller extends them only for
// writes and branch constraints), Trace is copied at the append site
// (appendTraceIfStmt), and the witness model is immutable.
func (s *State) fork(node *cfg.Node) *State {
	return &State{
		Node:  node,
		Env:   s.Env,
		PC:    s.PC,
		Depth: s.Depth + 1,
		Trace: s.Trace,
		Cover: s.Cover,
		Err:   s.Err,
		model: s.model,
	}
}

// EnvString renders the environment deterministically: "x: X, y: Y + X".
func (s *State) EnvString() string {
	var b strings.Builder
	first := true
	s.Env.Each(func(name string, val sym.Expr) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(name)
		b.WriteString(": ")
		b.WriteString(val.String())
	})
	return b.String()
}

// PCString renders the path condition like the paper: "PC: true" when empty.
func (s *State) PCString() string { return sym.Conjoin(s.PC.Slice()) }

// String renders "Loc: n3 | x: X | PC: X > 0".
func (s *State) String() string {
	return "Loc: n" + strconv.Itoa(s.Node.ID) + " | " + s.EnvString() + " | PC: " + s.PCString()
}

// Path is one complete execution path produced by symbolic execution.
type Path struct {
	// PC is the full path condition of the path.
	PC []sym.Expr
	// PCString is the canonical rendering of PC (used for comparing path
	// conditions across techniques and versions).
	PCString string
	// Env is the final symbolic environment (the symbolic summary of the
	// path's effect).
	Env map[string]sym.Expr
	// Trace is the sequence of statement CFG node IDs executed.
	Trace []int
	// Cover is the sorted set of statement CFG node IDs covered by sibling
	// paths that state merging folded into this one (nil outside merged
	// runs). Coverage accounting should consult Trace ∪ Cover.
	Cover []int
	// Err reports that the path ended in an assertion violation.
	Err bool
}

// Summary is the result of a symbolic execution run: the set of path
// conditions plus cost counters, i.e. the "symbolic summary" of §2.1.
type Summary struct {
	Paths []Path
	Stats Stats
}

// PathConditions returns the rendered path conditions in exploration order.
func (s *Summary) PathConditions() []string {
	out := make([]string, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p.PCString
	}
	return out
}

// ErrorPaths returns only the paths that ended in assertion violations.
func (s *Summary) ErrorPaths() []Path {
	var out []Path
	for _, p := range s.Paths {
		if p.Err {
			out = append(out, p)
		}
	}
	return out
}
