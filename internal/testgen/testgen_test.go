package testgen

import (
	"reflect"
	"strings"
	"testing"

	"dise/internal/constraint"
	"dise/internal/dise"
	"dise/internal/lang/parser"
	"dise/internal/solver"
	"dise/internal/sym"
	"dise/internal/symexec"
)

const testXSource = `
int y = 0;
proc testX(int x) {
  if (x > 0) {
    y = y + x;
  } else {
    y = y - x;
  }
}
`

func engineFor(t *testing.T, src, proc string) *symexec.Engine {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e, err := symexec.New(prog, proc, symexec.Config{})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return e
}

func TestGenerateFromTestX(t *testing.T) {
	e := engineFor(t, testXSource, "testX")
	summary := e.RunFull()
	g := NewGenerator(e)
	tests := g.Generate(summary)
	if len(tests) != 2 {
		t.Fatalf("tests = %d, want 2", len(tests))
	}
	// Deterministic smallest models: x > 0 → 1; x <= 0 → 0.
	if tests[0].Call != "testX(1)" {
		t.Errorf("test 0 = %q, want testX(1)", tests[0].Call)
	}
	if tests[1].Call != "testX(0)" {
		t.Errorf("test 1 = %q, want testX(0)", tests[1].Call)
	}
	if tests[0].Inputs["x"] != 1 {
		t.Errorf("inputs = %v, want x=1", tests[0].Inputs)
	}
}

func TestGenerateDeduplicatesPartialStates(t *testing.T) {
	// Paths split on a symbolic global; the method argument models coincide,
	// so the paper's partial-state rendering dedups them.
	src := `
int g = 0;
proc p(int x) {
  if (g > 5) {
    y = 1;
  } else {
    y = 2;
  }
}
`
	e := engineFor(t, src, "p")
	summary := e.RunFull()
	if len(summary.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(summary.Paths))
	}
	g := NewGenerator(e)
	tests := g.Generate(summary)
	if len(tests) != 1 {
		t.Fatalf("tests = %d, want 1 (both PCs constrain only the global)", len(tests))
	}
	if tests[0].Call != "p(0)" {
		t.Errorf("call = %q, want p(0)", tests[0].Call)
	}
}

func TestGenerateBoolRendering(t *testing.T) {
	src := `proc p(bool flag, int x) {
  if (flag) {
    y = x;
  } else {
    y = 0;
  }
}`
	e := engineFor(t, src, "p")
	summary := e.RunFull()
	g := NewGenerator(e)
	tests := g.Generate(summary)
	if len(tests) != 2 {
		t.Fatalf("tests = %d, want 2", len(tests))
	}
	if tests[0].Call != "p(true, 0)" || tests[1].Call != "p(false, 0)" {
		t.Errorf("calls = %v, want p(true, 0) and p(false, 0)", Calls(tests))
	}
}

func TestModelsSatisfyPathConditions(t *testing.T) {
	// Every generated test's full model must satisfy the path condition it
	// came from.
	e := engineFor(t, testXSource, "testX")
	summary := e.RunFull()
	g := NewGenerator(e)
	for _, p := range summary.Paths {
		res := g.Check(p.PC)
		if !res.Sat {
			t.Fatalf("path %q must be satisfiable", p.PCString)
		}
		for _, c := range p.PC {
			v, err := solver.EvalInt01(c, res.Model)
			if err != nil || v == 0 {
				t.Errorf("model %v violates %s (err=%v)", res.Model, c, err)
			}
		}
	}
}

func TestSelectAugment(t *testing.T) {
	base := []TestCase{{Call: "p(0)"}, {Call: "p(1)"}, {Call: "p(5)"}}
	diseT := []TestCase{{Call: "p(1)"}, {Call: "p(7)"}, {Call: "p(0)"}}
	sel := SelectAugment(base, diseT)
	if got := Calls(sel.Selected); !reflect.DeepEqual(got, []string{"p(0)", "p(1)"}) {
		t.Errorf("selected = %v, want [p(0) p(1)]", got)
	}
	if got := Calls(sel.Added); !reflect.DeepEqual(got, []string{"p(7)"}) {
		t.Errorf("added = %v, want [p(7)]", got)
	}
	if sel.Total() != 3 {
		t.Errorf("total = %d, want 3", sel.Total())
	}
}

func TestSelectAugmentEmptyCases(t *testing.T) {
	sel := SelectAugment(nil, nil)
	if sel.Total() != 0 {
		t.Error("empty selection must be empty")
	}
	sel = SelectAugment(nil, []TestCase{{Call: "p(1)"}})
	if len(sel.Selected) != 0 || len(sel.Added) != 1 {
		t.Error("all tests must be added when base suite is empty")
	}
}

// TestEndToEndSelectionOnMotivatingExample mirrors the paper's workflow:
// full SE on the base version produces the existing suite; DiSE on the
// modified version produces the affected tests; selection + augmentation
// covers all affected branches.
func TestEndToEndSelectionOnMotivatingExample(t *testing.T) {
	baseSrc := strings.Replace(fig2Mod, "PedalPos <= 0", "PedalPos == 0", 1)
	baseProg, err := parser.Parse(baseSrc)
	if err != nil {
		t.Fatal(err)
	}
	modProg, err := parser.Parse(fig2Mod)
	if err != nil {
		t.Fatal(err)
	}

	// Existing suite: full symbolic execution of the base version.
	baseEngine, err := symexec.New(baseProg, "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseSuite := NewGenerator(baseEngine).Generate(baseEngine.RunFull())
	if len(baseSuite) == 0 {
		t.Fatal("base suite is empty")
	}

	// DiSE on the modified version.
	res, err := dise.Analyze(baseProg, modProg, "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	modEngine, err := symexec.New(modProg, "update", symexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	diseTests := NewGenerator(modEngine).Generate(res.Summary)
	if len(diseTests) == 0 {
		t.Fatal("DiSE generated no tests")
	}
	sel := SelectAugment(baseSuite, diseTests)
	if sel.Total() != len(diseTests) {
		t.Errorf("selection total %d != DiSE tests %d", sel.Total(), len(diseTests))
	}
	// The change (== to <=) keeps PedalPos == 0 behaviors shared, so at
	// least one test should be re-usable and at least the suite must not be
	// fully re-usable or fully new in this example... verify both sets are
	// consistent with string membership.
	base := map[string]bool{}
	for _, tc := range baseSuite {
		base[tc.Call] = true
	}
	for _, tc := range sel.Selected {
		if !base[tc.Call] {
			t.Errorf("selected test %q not in base suite", tc.Call)
		}
	}
	for _, tc := range sel.Added {
		if base[tc.Call] {
			t.Errorf("added test %q already in base suite", tc.Call)
		}
	}
}

const fig2Mod = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos <= 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func TestGenerateSkipsUnknown(t *testing.T) {
	// A generator with a tiny budget must skip rather than crash.
	e := engineFor(t, testXSource, "testX")
	summary := e.RunFull()
	g := NewGenerator(e)
	// A budget-1 solver context over the same domains: simple constraints
	// still solve via propagation alone; force Unknown with an artificial
	// hard path condition.
	domains := e.Domains()
	domains["X"] = solver.DefaultDomain
	domains["Y"] = solver.DefaultDomain
	tiny, err := constraint.New(constraint.BackendInterval, constraint.Options{
		Domains:    domains,
		NodeBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Check = func(pc []sym.Expr) constraint.Result {
		tiny.Push()
		defer tiny.Pop()
		for _, c := range pc {
			tiny.Assert(c)
		}
		return tiny.Check()
	}
	hard := summary
	hard.Paths = append([]symexec.Path{}, summary.Paths...)
	x, y := sym.V("X"), sym.V("Y")
	hard.Paths[0].PC = []sym.Expr{
		sym.Cmp(sym.OpEQ, sym.Mul(x, y), sym.Int(999_983)),
		sym.Cmp(sym.OpGT, x, sym.One),
		sym.Cmp(sym.OpGT, y, sym.One),
	}
	tests := g.Generate(hard)
	// The hard PC is skipped; the other remains.
	if len(tests) != 1 {
		t.Fatalf("tests = %d, want 1 (hard PC skipped)", len(tests))
	}
}
