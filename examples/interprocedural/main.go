// Inter-procedural DiSE (the paper's §7 future work, realized via call
// inlining): a change inside a helper procedure affects conditionals in its
// caller through a global, and DiSE — run on the inlined system — finds the
// affected path conditions across the procedure boundary.
//
// Run with: go run ./examples/interprocedural
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dise"
)

const baseSystem = `
int Pressure = 0;
int Relief = 0;
int Alarm = 0;
int Beacon = 0;

proc measure(int raw, int offset) {
  // Sensor conditioning: clamp negative readings.
  adjusted = raw + offset;
  if (adjusted < 0) {
    Pressure = 0;
  } else {
    Pressure = adjusted;
  }
}

proc protect(int limit) {
  if (Pressure > limit) {
    Relief = 1;
    Alarm = 1;
  } else {
    Relief = 0;
  }
}

proc telemetry(int channel) {
  // Unrelated housekeeping: not affected by sensor-conditioning changes.
  if (channel == 0) {
    Beacon = 1;
  } else if (channel == 1) {
    Beacon = 2;
  } else {
    Beacon = 0;
  }
}

proc cycle(int raw, int offset, int limit, int channel) {
  measure(raw, offset);
  telemetry(channel);
  protect(limit);
}
`

func main() {
	// The change is inside the helper: conditioning now doubles the
	// reading. Its effect flows through the Pressure global into the
	// protect() conditional two calls away.
	modSystem := strings.Replace(baseSystem, "Pressure = adjusted;", "Pressure = adjusted + adjusted;", 1)

	ctx := context.Background()
	analyzer := dise.NewAnalyzer()

	// Show the inlined form of the system (what the analysis operates on).
	flat, err := dise.InlineProgram(modSystem, "cycle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inlined system under analysis:")
	fmt.Println(flat)

	res, err := analyzer.AnalyzeInterprocedural(ctx, baseSystem, modSystem, "cycle")
	if err != nil {
		log.Fatal(err)
	}
	full, err := analyzer.Execute(ctx, flat, "cycle")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full symbolic execution: %d path conditions, %d states\n",
		len(full.Paths), full.Stats.StatesExplored)
	fmt.Printf("DiSE (inter-procedural): %d path conditions, %d states\n\n",
		len(res.Paths), res.Stats.StatesExplored)

	fmt.Println("affected path conditions (note the protect() conditional is affected")
	fmt.Println("by the change inside measure(), across the call boundary):")
	for i, pc := range res.PathConditions() {
		fmt.Printf("  PC%d: %s\n", i+1, pc)
	}
}
