// Quickstart: the paper's motivating example (Fig. 2) end to end, on the
// service-grade Analyzer API.
//
// Two versions of the Wheel Brake System fragment differ in one comparison
// operator (== vs <=). Full symbolic execution of the modified version
// yields 21 path conditions; DiSE, using the diff between the versions,
// yields only the 7 path conditions affected by the change (paper §2.2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dise"
)

const baseVersion = `
int AltPress = 0;
int Meter = 2;

proc update(int PedalPos, int BSwitch, int PedalCmd) {
  if (PedalPos == 0) {
    PedalCmd = PedalCmd + 1;
  } else if (PedalPos == 1) {
    PedalCmd = PedalCmd + 2;
  } else {
    PedalCmd = PedalPos;
  }
  PedalCmd = PedalCmd + 1;
  if (BSwitch == 0) {
    Meter = 1;
  } else if (BSwitch == 1) {
    Meter = 2;
  }
  if (PedalCmd == 2) {
    AltPress = 0;
  } else if (PedalCmd == 3) {
    AltPress = 1;
  } else {
    AltPress = 2;
  }
}
`

func main() {
	// The change of Fig. 2: the first conditional's == becomes <=.
	modVersion := strings.Replace(baseVersion, "PedalPos == 0", "PedalPos <= 0", 1)

	// One Analyzer serves every request; its parse/CFG cache means the two
	// calls below parse each version only once.
	ctx := context.Background()
	analyzer := dise.NewAnalyzer()

	// Full (traditional) symbolic execution of the modified version.
	full, err := analyzer.Execute(ctx, modVersion, "update")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full symbolic execution: %d path conditions, %d states\n",
		len(full.Paths), full.Stats.StatesExplored)

	// DiSE: diff both versions, compute affected locations, direct the
	// symbolic execution at the change.
	res, err := analyzer.Analyze(ctx, dise.Request{
		BaseSrc: baseVersion,
		ModSrc:  modVersion,
		Proc:    "update",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DiSE:                    %d path conditions, %d states\n",
		len(res.Paths), res.Stats.StatesExplored)
	fmt.Printf("affected conditionals at lines %v\n", res.AffectedConditionalLines)
	fmt.Printf("affected writes at lines       %v\n\n", res.AffectedWriteLines)

	fmt.Println("affected path conditions:")
	for i, pc := range res.PathConditions() {
		fmt.Printf("  PC%d: %s\n", i+1, pc)
	}

	// Solve the affected path conditions into concrete test inputs.
	tests, err := res.Tests()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntest inputs exercising the affected behaviors:")
	for _, tc := range tests {
		fmt.Printf("  %s\n", tc.Call)
	}
}
