// Loops: DiSE on a program with a while loop.
//
// The paper's artifacts are loop-free, but the algorithm handles loops via
// a depth bound (paper §2.1) and the CheckLoops/SCC machinery of Fig. 6,
// which re-arms affected nodes inside a loop's strongly connected component
// so sequences of affected nodes across iterations are explored. This
// example shows DiSE following a changed loop body across iterations.
//
// Run with: go run ./examples/loops
package main

import (
	"fmt"
	"log"
	"strings"

	"dise"
)

const baseVersion = `
proc drain(int Tank, int Valve) {
  Level = Tank;
  Steps = 0;
  while (Level > 0 && Steps < 5) {
    Level = Level - Valve;
    Steps = Steps + 1;
  }
  if (Steps >= 5) {
    Timeout = 1;
  } else {
    Timeout = 0;
  }
}
`

func main() {
	// The change: the drain step removes twice the valve flow.
	modVersion := strings.Replace(baseVersion, "Level = Level - Valve;", "Level = Level - Valve - Valve;", 1)

	opts := dise.Options{DepthBound: 60}
	full, err := dise.Execute(modVersion, "drain", opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dise.Analyze(baseVersion, modVersion, "drain", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("full symbolic execution: %d path conditions, %d states\n",
		len(full.Paths), full.Stats.StatesExplored)
	fmt.Printf("DiSE:                    %d path conditions, %d states\n\n",
		len(res.Paths), res.Stats.StatesExplored)

	fmt.Println("affected path conditions across loop iterations:")
	for i, pc := range res.PathConditions() {
		fmt.Printf("  PC%d: %s\n", i+1, pc)
	}
}
