// Loops: DiSE on a program with a while loop, with path conditions
// streamed as the directed search finds them.
//
// The paper's artifacts are loop-free, but the algorithm handles loops via
// a depth bound (paper §2.1) and the CheckLoops/SCC machinery of Fig. 6,
// which re-arms affected nodes inside a loop's strongly connected component
// so sequences of affected nodes across iterations are explored. This
// example shows DiSE following a changed loop body across iterations, and
// uses AnalyzeStream to print each affected path condition the moment the
// search completes it — the mode a service uses to start acting on results
// before a deep exploration finishes.
//
// Run with: go run ./examples/loops
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dise"
)

const baseVersion = `
proc drain(int Tank, int Valve) {
  Level = Tank;
  Steps = 0;
  while (Level > 0 && Steps < 5) {
    Level = Level - Valve;
    Steps = Steps + 1;
  }
  if (Steps >= 5) {
    Timeout = 1;
  } else {
    Timeout = 0;
  }
}
`

func main() {
	// The change: the drain step removes twice the valve flow.
	modVersion := strings.Replace(baseVersion, "Level = Level - Valve;", "Level = Level - Valve - Valve;", 1)

	ctx := context.Background()
	analyzer := dise.NewAnalyzer(dise.WithDepthBound(60))

	full, err := analyzer.Execute(ctx, modVersion, "drain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full symbolic execution: %d path conditions, %d states\n\n",
		len(full.Paths), full.Stats.StatesExplored)

	fmt.Println("affected path conditions, streamed across loop iterations:")
	n := 0
	res, err := analyzer.AnalyzeStream(ctx, dise.Request{
		BaseSrc: baseVersion,
		ModSrc:  modVersion,
		Proc:    "drain",
	}, func(p dise.PathInfo) bool {
		n++
		fmt.Printf("  PC%d: %s\n", n, p.PathCondition)
		return true // false would stop the search early
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDiSE: %d path conditions, %d states\n",
		len(res.Paths), res.Stats.StatesExplored)
}
