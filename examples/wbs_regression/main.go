// WBS regression analysis: run DiSE across the Wheel Brake System mutant
// catalog (the paper's Table 2(b) workload) and report, per version, how
// much of the program's behavior the change affects.
//
// This illustrates the paper's central claim on a full artifact: when a
// change touches a subtree, DiSE explores a fraction of the program; when
// it reaches the root of the dataflow chain, DiSE degenerates to full
// symbolic execution (and says so).
//
// Run with: go run ./examples/wbs_regression
package main

import (
	"context"
	"fmt"
	"log"

	"dise"
)

func main() {
	analyzer := dise.NewAnalyzer()
	t2, t3, err := analyzer.EvaluationTables(context.Background(), "WBS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)
	fmt.Println(t3)
	fmt.Println("Reading the tables:")
	fmt.Println("  - v1/v10: the change taints the root of the BrakeCmd dataflow")
	fmt.Println("    chain; DiSE explores the same 24 path conditions as full")
	fmt.Println("    symbolic execution.")
	fmt.Println("  - v4: a pure-output write changed; one affected path condition.")
	fmt.Println("  - v7/v11: changes confined to the skid block; DiSE explores a")
	fmt.Println("    strict subset (12 of 24).")
	fmt.Println("  - v8: a deleted pure-output write; nothing downstream is")
	fmt.Println("    affected, so DiSE explores (almost) nothing.")
}
