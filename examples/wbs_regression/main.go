// WBS regression analysis: run DiSE across the Wheel Brake System mutant
// catalog (the paper's Table 2(b) workload) and report, per version, how
// much of the program's behavior the change affects.
//
// This illustrates the paper's central claim on a full artifact: when a
// change touches a subtree, DiSE explores a fraction of the program; when
// it touches the root conditional, DiSE degenerates to full symbolic
// execution (and says so).
//
// Run with: go run ./examples/wbs_regression
package main

import (
	"fmt"
	"log"

	"dise"
)

func main() {
	t2, t3, err := dise.EvaluationTables("WBS", dise.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)
	fmt.Println(t3)
	fmt.Println("Reading the tables:")
	fmt.Println("  - v1/v10: the change taints the root conditional; DiSE explores")
	fmt.Println("    the same 24 path conditions as full symbolic execution.")
	fmt.Println("  - v4: a pure-output write changed; one affected path condition.")
	fmt.Println("  - v2/v3/v5: subtree changes; DiSE explores a strict subset.")
}
