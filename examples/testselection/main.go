// Test selection and augmentation (paper §5.2): maintain a regression suite
// across a program change.
//
// The existing suite comes from full symbolic execution of the original
// version. After the change, DiSE computes the affected path conditions;
// solving them yields the tests that matter for the change. String
// comparison against the existing suite splits them into re-usable
// (selected) and new (added) tests — the paper's Table 3 workflow.
//
// Run with: go run ./examples/testselection
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dise"
)

const baseVersion = `
int LowWater = 10;
int HighWater = 90;
int Alarm = 0;
int Pump = 0;

proc control(int Level, int Rate, bool Manual) {
  if (Level < LowWater) {
    Pump = 1;
  } else if (Level > HighWater) {
    Pump = 0;
  } else {
    Pump = Pump;
  }
  if (Rate > 5) {
    Alarm = 1;
  } else {
    Alarm = 0;
  }
  if (Manual) {
    Pump = 0;
  }
}
`

func main() {
	// The change: the rate alarm threshold tightens from 5 to 3.
	modVersion := strings.Replace(baseVersion, "Rate > 5", "Rate > 3", 1)

	ctx := context.Background()
	analyzer := dise.NewAnalyzer()

	// 1. Existing suite: full symbolic execution of the original version.
	baseSum, err := analyzer.Execute(ctx, baseVersion, "control")
	if err != nil {
		log.Fatal(err)
	}
	baseSuite := baseSum.Tests()
	fmt.Printf("existing suite (%d tests):\n", len(baseSuite))
	for _, tc := range baseSuite {
		fmt.Printf("  %s\n", tc.Call)
	}

	// 2. DiSE on the change. The base version was parsed by the Execute
	// above; the Analyzer's cache reuses it here.
	res, err := analyzer.Analyze(ctx, dise.Request{
		BaseSrc: baseVersion,
		ModSrc:  modVersion,
		Proc:    "control",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDiSE: %d affected path conditions (full run has %d paths)\n",
		len(res.Paths), len(baseSum.Paths))

	// 3. Solve affected path conditions into tests; select + augment.
	diseTests, err := res.Tests()
	if err != nil {
		log.Fatal(err)
	}
	sel := dise.SelectAugment(baseSuite, diseTests)
	fmt.Printf("\nselected (re-usable) tests: %d\n", len(sel.Selected))
	for _, tc := range sel.Selected {
		fmt.Printf("  %s\n", tc.Call)
	}
	fmt.Printf("added (new) tests: %d\n", len(sel.Added))
	for _, tc := range sel.Added {
		fmt.Printf("  %s    <- exercises %s\n", tc.Call, tc.PathCondition)
	}
	fmt.Printf("\nregression run: %d of %d tests instead of re-test-all\n",
		len(sel.Selected)+len(sel.Added), len(baseSuite))
}
