module dise

go 1.23
